//! Deterministic, seeded fault injection for the disk array.
//!
//! Three fault classes, all driven by per-disk SplitMix64 streams derived
//! from a single `u64` seed — no wall clock, no global RNG, so a given
//! `(seed, FaultPlan)` always produces the identical fault schedule:
//!
//! * **Transient read errors** — the access occupies the disk for a full
//!   service time (the head did the work) but the read fails; the caller
//!   may retry once the disk frees up.
//! * **Slow-disk episodes** — a disk enters a bounded window during which
//!   every service time is multiplied by `slow_factor` (thermal
//!   recalibration, background scrubbing, a degraded head).
//! * **Unavailability windows** — the disk rejects requests outright until
//!   a recovery deadline; rejections are instantaneous (no queue slot is
//!   consumed).
//!
//! Fault decisions consume exactly three RNG draws per submission
//! regardless of outcome, so the schedule of disk `d` depends only on
//! `(seed, d, submission count on d)` — retry timing or cross-disk
//! interleaving cannot perturb it.

use core::fmt;

/// SplitMix64 step: advances `state` and returns the next output word.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map 64 random bits to a uniform `f64` in `[0, 1)` (53-bit precision).
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Declarative description of the faults to inject, seeded by `seed`.
///
/// Rates are per-submission probabilities in `[0, 1]`; durations are in
/// simulated milliseconds. [`FaultPlan::disabled`] (all rates zero) is the
/// identity: a [`crate::DiskArray`] carrying it behaves bit-for-bit like
/// one with no injector at all.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultPlan {
    /// Seed for the per-disk fault streams.
    pub seed: u64,
    /// Probability a submission fails with a transient read error.
    pub transient_error_rate: f64,
    /// Probability a submission triggers a slow-disk episode.
    pub slow_episode_rate: f64,
    /// Service-time multiplier during a slow episode (≥ 1).
    pub slow_factor: f64,
    /// Length of one slow episode (ms).
    pub slow_episode_ms: f64,
    /// Probability a submission knocks its disk unavailable.
    pub unavailable_rate: f64,
    /// Length of one unavailability window (ms).
    pub unavailable_ms: f64,
}

impl FaultPlan {
    /// The identity plan: no faults ever fire.
    pub fn disabled() -> Self {
        FaultPlan {
            seed: 0,
            transient_error_rate: 0.0,
            slow_episode_rate: 0.0,
            slow_factor: 1.0,
            slow_episode_ms: 0.0,
            unavailable_rate: 0.0,
            unavailable_ms: 0.0,
        }
    }

    /// A plan with every fault class active at `rate`, with moderate
    /// episode parameters scaled to a `service_ms`-class disk.
    pub fn uniform(seed: u64, rate: f64, service_ms: f64) -> Self {
        FaultPlan {
            seed,
            transient_error_rate: rate,
            slow_episode_rate: rate / 4.0,
            slow_factor: 4.0,
            slow_episode_ms: 20.0 * service_ms,
            unavailable_rate: rate / 10.0,
            unavailable_ms: 10.0 * service_ms,
        }
    }

    /// Does any fault class have a nonzero firing rate?
    pub fn is_active(&self) -> bool {
        self.transient_error_rate > 0.0
            || self.slow_episode_rate > 0.0
            || self.unavailable_rate > 0.0
    }

    /// Validate rates and durations.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (field, value) in [
            ("transient_error_rate", self.transient_error_rate),
            ("slow_episode_rate", self.slow_episode_rate),
            ("unavailable_rate", self.unavailable_rate),
        ] {
            if !(0.0..=1.0).contains(&value) || !value.is_finite() {
                return Err(ConfigError::FaultRateOutOfRange { field, value });
            }
        }
        for (field, value) in
            [("slow_episode_ms", self.slow_episode_ms), ("unavailable_ms", self.unavailable_ms)]
        {
            if !value.is_finite() || value < 0.0 {
                return Err(ConfigError::FaultDurationInvalid { field, value });
            }
        }
        if !self.slow_factor.is_finite() || self.slow_factor < 1.0 {
            return Err(ConfigError::SlowFactorInvalid(self.slow_factor));
        }
        Ok(())
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::disabled()
    }
}

/// Typed validation failure for disk-array and fault configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ConfigError {
    /// `num_disks` was zero.
    ZeroDisks,
    /// `service_ms` was non-positive or non-finite.
    ServiceTimeInvalid(f64),
    /// A round-robin stripe unit of zero blocks.
    ZeroStripeUnit,
    /// A fault probability outside `[0, 1]`.
    FaultRateOutOfRange {
        /// Which [`FaultPlan`] field.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A fault episode duration that is negative or non-finite.
    FaultDurationInvalid {
        /// Which [`FaultPlan`] field.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A slow-episode multiplier below 1 or non-finite.
    SlowFactorInvalid(f64),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ConfigError::ZeroDisks => write!(f, "disk array needs at least one disk"),
            ConfigError::ServiceTimeInvalid(v) => {
                write!(f, "disk service time must be positive and finite, got {v}")
            }
            ConfigError::ZeroStripeUnit => {
                write!(f, "stripe unit must be at least one block")
            }
            ConfigError::FaultRateOutOfRange { field, value } => {
                write!(f, "fault rate {field} must lie in [0, 1], got {value}")
            }
            ConfigError::FaultDurationInvalid { field, value } => {
                write!(f, "fault duration {field} must be finite and >= 0 ms, got {value}")
            }
            ConfigError::SlowFactorInvalid(v) => {
                write!(f, "slow factor must be finite and >= 1, got {v}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// A fault surfaced by [`crate::DiskArray::submit`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DiskFault {
    /// The read occupied disk `disk` until `busy_until_ms` and then
    /// failed; a retry submitted at or after that time may succeed.
    TransientError {
        /// Disk that served (and failed) the read.
        disk: usize,
        /// Virtual time at which the disk frees up again.
        busy_until_ms: f64,
    },
    /// Disk `disk` is refusing requests until `until_ms`; the rejection is
    /// instantaneous and consumes no disk time.
    Unavailable {
        /// Disk that rejected the read.
        disk: usize,
        /// Virtual time at which the disk recovers.
        until_ms: f64,
    },
}

impl DiskFault {
    /// Earliest virtual time a retry of the failed request could start.
    pub fn retry_at_ms(&self) -> f64 {
        match *self {
            DiskFault::TransientError { busy_until_ms, .. } => busy_until_ms,
            DiskFault::Unavailable { until_ms, .. } => until_ms,
        }
    }

    /// The disk the fault occurred on.
    pub fn disk(&self) -> usize {
        match *self {
            DiskFault::TransientError { disk, .. } | DiskFault::Unavailable { disk, .. } => disk,
        }
    }
}

impl fmt::Display for DiskFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DiskFault::TransientError { disk, busy_until_ms } => {
                write!(f, "transient read error on disk {disk} (busy until {busy_until_ms:.3} ms)")
            }
            DiskFault::Unavailable { disk, until_ms } => {
                write!(f, "disk {disk} unavailable until {until_ms:.3} ms")
            }
        }
    }
}

impl std::error::Error for DiskFault {}

/// What the injector decided for one submission.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultDecision {
    /// Serve the request with the given effective service time.
    Proceed {
        /// Service time after any slow-episode multiplier.
        service_ms: f64,
        /// Was a slow-episode multiplier applied?
        slowed: bool,
    },
    /// Fail the request after occupying the disk for one service time.
    TransientError,
    /// Reject the request instantly; the disk recovers at `until_ms`.
    Unavailable {
        /// Virtual time at which the disk recovers.
        until_ms: f64,
    },
}

/// Mutable fault state for one disk.
#[derive(Clone, Debug)]
struct DiskFaultState {
    /// SplitMix64 state for this disk's decision stream.
    rng: u64,
    /// End of the current slow episode, if any.
    slow_until_ms: f64,
    /// End of the current unavailability window, if any.
    unavailable_until_ms: f64,
}

/// Per-disk deterministic fault source. Owned by [`crate::DiskArray`];
/// exposed so determinism tests can drive it directly.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    disks: Vec<DiskFaultState>,
}

impl FaultInjector {
    /// An injector for `num_disks` disks following `plan`.
    pub fn new(plan: FaultPlan, num_disks: usize) -> Self {
        let disks = (0..num_disks)
            .map(|d| {
                // Decorrelate disks by folding the index into the seed
                // before one mixing step.
                let mut s = plan.seed ^ (d as u64 + 1).wrapping_mul(0xA24B_AED4_963E_E407);
                splitmix64(&mut s);
                DiskFaultState { rng: s, slow_until_ms: 0.0, unavailable_until_ms: 0.0 }
            })
            .collect();
        FaultInjector { plan, disks }
    }

    /// The plan this injector follows.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decide the fate of a submission to `disk` at `now_ms` with nominal
    /// service time `service_ms`.
    ///
    /// Exactly three RNG words are drawn per call, so the decision stream
    /// for a disk is a pure function of its submission count.
    pub fn decide(&mut self, disk: usize, now_ms: f64, service_ms: f64) -> FaultDecision {
        let state = &mut self.disks[disk];
        let u_unavail = unit_f64(splitmix64(&mut state.rng));
        let u_error = unit_f64(splitmix64(&mut state.rng));
        let u_slow = unit_f64(splitmix64(&mut state.rng));

        if now_ms < state.unavailable_until_ms {
            return FaultDecision::Unavailable { until_ms: state.unavailable_until_ms };
        }
        if u_unavail < self.plan.unavailable_rate {
            state.unavailable_until_ms = now_ms + self.plan.unavailable_ms;
            return FaultDecision::Unavailable { until_ms: state.unavailable_until_ms };
        }
        if u_error < self.plan.transient_error_rate {
            return FaultDecision::TransientError;
        }
        if u_slow < self.plan.slow_episode_rate {
            state.slow_until_ms = now_ms.max(state.slow_until_ms) + self.plan.slow_episode_ms;
        }
        if now_ms < state.slow_until_ms {
            FaultDecision::Proceed { service_ms: service_ms * self.plan.slow_factor, slowed: true }
        } else {
            FaultDecision::Proceed { service_ms, slowed: false }
        }
    }
}

// ---------------------------------------------------------------------------
// Durability faults (write path)
// ---------------------------------------------------------------------------

/// Declarative durability faults for the append-only write path
/// (`prefetch-wal`): short writes, fsync errors, and silent bit flips,
/// all driven by SplitMix64 streams derived from one seed — the same
/// determinism contract as [`FaultPlan`]. Rates are per-operation
/// probabilities; [`DurabilityFaultPlan::disabled`] is the identity.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DurabilityFaultPlan {
    /// Seed for the per-log fault streams.
    pub seed: u64,
    /// Probability an append stops after a prefix of the record buffer
    /// and fails (the torn tail a crash mid-append leaves).
    pub short_write_rate: f64,
    /// Probability a sync fails with an injected I/O error.
    pub fsync_error_rate: f64,
    /// Probability an append silently flips one bit of the record buffer
    /// (media corruption, caught later by the record fingerprint).
    pub bit_flip_rate: f64,
}

impl DurabilityFaultPlan {
    /// The identity plan: no durability faults ever fire.
    pub fn disabled() -> Self {
        DurabilityFaultPlan {
            seed: 0,
            short_write_rate: 0.0,
            fsync_error_rate: 0.0,
            bit_flip_rate: 0.0,
        }
    }

    /// Does any fault class have a nonzero firing rate?
    pub fn is_active(&self) -> bool {
        self.short_write_rate > 0.0 || self.fsync_error_rate > 0.0 || self.bit_flip_rate > 0.0
    }

    /// Validate rates.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (field, value) in [
            ("short_write_rate", self.short_write_rate),
            ("fsync_error_rate", self.fsync_error_rate),
            ("bit_flip_rate", self.bit_flip_rate),
        ] {
            if !(0.0..=1.0).contains(&value) || !value.is_finite() {
                return Err(ConfigError::FaultRateOutOfRange { field, value });
            }
        }
        Ok(())
    }

    /// A deterministic injector for one log. `stream` decorrelates
    /// independent logs (e.g. per-tenant WAL segments) the way the disk
    /// index decorrelates [`FaultInjector`] streams.
    pub fn injector(&self, stream: u64) -> DurabilityInjector {
        let derive = |salt: u64| {
            let mut s = self.seed ^ stream.wrapping_mul(0xA24B_AED4_963E_E407) ^ salt;
            splitmix64(&mut s);
            s
        };
        DurabilityInjector { plan: *self, append_rng: derive(0x57A1), sync_rng: derive(0x5F5C) }
    }
}

impl Default for DurabilityFaultPlan {
    fn default() -> Self {
        DurabilityFaultPlan::disabled()
    }
}

/// Deterministic [`prefetch_wal::WriteFaults`] source for one log; built
/// by [`DurabilityFaultPlan::injector`]. Three RNG words per append
/// decision and one per sync decision, drawn unconditionally, so a log's
/// fault schedule is a pure function of its own operation sequence.
#[derive(Clone, Debug)]
pub struct DurabilityInjector {
    plan: DurabilityFaultPlan,
    append_rng: u64,
    sync_rng: u64,
}

impl prefetch_wal::WriteFaults for DurabilityInjector {
    fn on_append(&mut self, _index: u64, len: usize) -> Option<prefetch_wal::AppendFault> {
        let u_short = unit_f64(splitmix64(&mut self.append_rng));
        let u_flip = unit_f64(splitmix64(&mut self.append_rng));
        let position = splitmix64(&mut self.append_rng);
        if u_short < self.plan.short_write_rate {
            return Some(prefetch_wal::AppendFault::ShortWrite {
                keep: position as usize % len.max(1),
            });
        }
        if u_flip < self.plan.bit_flip_rate {
            let bits = (len * 8).max(1) as u64;
            return Some(prefetch_wal::AppendFault::BitFlip { bit: (position % bits) as u32 });
        }
        None
    }

    fn on_sync(&mut self, _index: u64) -> bool {
        unit_f64(splitmix64(&mut self.sync_rng)) < self.plan.fsync_error_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_plan(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            transient_error_rate: 0.2,
            slow_episode_rate: 0.1,
            slow_factor: 3.0,
            slow_episode_ms: 50.0,
            unavailable_rate: 0.05,
            unavailable_ms: 100.0,
        }
    }

    #[test]
    fn identical_seeds_give_identical_schedules() {
        let mut a = FaultInjector::new(busy_plan(42), 4);
        let mut b = FaultInjector::new(busy_plan(42), 4);
        for i in 0..2000 {
            let disk = i % 4;
            let now = i as f64 * 3.0;
            assert_eq!(a.decide(disk, now, 15.0), b.decide(disk, now, 15.0), "submission {i}");
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultInjector::new(busy_plan(1), 1);
        let mut b = FaultInjector::new(busy_plan(2), 1);
        let diverged = (0..200).any(|i| {
            let now = i as f64;
            a.decide(0, now, 15.0) != b.decide(0, now, 15.0)
        });
        assert!(diverged, "seeds 1 and 2 produced the same 200-step schedule");
    }

    #[test]
    fn disabled_plan_always_proceeds_at_nominal_speed() {
        let mut inj = FaultInjector::new(FaultPlan::disabled(), 2);
        for i in 0..500 {
            let d = inj.decide(i % 2, i as f64, 15.0);
            assert_eq!(d, FaultDecision::Proceed { service_ms: 15.0, slowed: false });
        }
    }

    #[test]
    fn unavailability_window_rejects_until_recovery() {
        let plan =
            FaultPlan { unavailable_rate: 1.0, unavailable_ms: 100.0, ..FaultPlan::disabled() };
        let mut inj = FaultInjector::new(plan, 1);
        match inj.decide(0, 10.0, 15.0) {
            FaultDecision::Unavailable { until_ms } => assert_eq!(until_ms, 110.0),
            other => panic!("expected unavailable, got {other:?}"),
        }
        // Still inside the window: rejected with the same deadline.
        match inj.decide(0, 50.0, 15.0) {
            FaultDecision::Unavailable { until_ms } => assert_eq!(until_ms, 110.0),
            other => panic!("expected unavailable, got {other:?}"),
        }
    }

    #[test]
    fn slow_episode_multiplies_service_time() {
        let plan = FaultPlan {
            slow_episode_rate: 1.0,
            slow_factor: 4.0,
            slow_episode_ms: 100.0,
            ..FaultPlan::disabled()
        };
        let mut inj = FaultInjector::new(plan, 1);
        match inj.decide(0, 0.0, 15.0) {
            FaultDecision::Proceed { service_ms, slowed } => {
                assert!(slowed);
                assert_eq!(service_ms, 60.0);
            }
            other => panic!("expected slow proceed, got {other:?}"),
        }
    }

    #[test]
    fn plan_validation_rejects_bad_values() {
        let mut p = FaultPlan::disabled();
        p.transient_error_rate = 1.5;
        assert!(matches!(p.validate(), Err(ConfigError::FaultRateOutOfRange { .. })));
        let mut p = FaultPlan::disabled();
        p.unavailable_ms = f64::NAN;
        assert!(matches!(p.validate(), Err(ConfigError::FaultDurationInvalid { .. })));
        let mut p = FaultPlan::disabled();
        p.slow_factor = 0.5;
        assert!(matches!(p.validate(), Err(ConfigError::SlowFactorInvalid(_))));
        assert!(FaultPlan::disabled().validate().is_ok());
        assert!(FaultPlan::uniform(7, 0.05, 15.0).validate().is_ok());
    }

    #[test]
    fn fault_helpers_report_retry_times() {
        let e = DiskFault::TransientError { disk: 2, busy_until_ms: 45.0 };
        assert_eq!(e.retry_at_ms(), 45.0);
        assert_eq!(e.disk(), 2);
        let u = DiskFault::Unavailable { disk: 1, until_ms: 80.0 };
        assert_eq!(u.retry_at_ms(), 80.0);
        assert_eq!(u.disk(), 1);
        assert!(e.to_string().contains("transient"));
        assert!(u.to_string().contains("unavailable"));
    }

    // -- durability faults ---------------------------------------------------

    use prefetch_wal::{AppendFault, WriteFaults};

    fn schedule(plan: &DurabilityFaultPlan, stream: u64, ops: usize) -> Vec<Option<AppendFault>> {
        let mut inj = plan.injector(stream);
        (0..ops).map(|i| inj.on_append(i as u64, 64)).collect()
    }

    #[test]
    fn durability_disabled_never_fires() {
        let plan = DurabilityFaultPlan::disabled();
        assert!(!plan.is_active());
        let mut inj = plan.injector(3);
        for i in 0..200 {
            assert_eq!(inj.on_append(i, 64), None);
            assert!(!inj.on_sync(i));
        }
    }

    #[test]
    fn durability_schedule_is_deterministic_and_stream_decorrelated() {
        let plan = DurabilityFaultPlan {
            seed: 42,
            short_write_rate: 0.2,
            fsync_error_rate: 0.1,
            bit_flip_rate: 0.2,
        };
        assert!(plan.is_active());
        let a = schedule(&plan, 0, 256);
        assert_eq!(a, schedule(&plan, 0, 256), "same stream must replay identically");
        let b = schedule(&plan, 1, 256);
        assert_ne!(a, b, "distinct streams must not share a fault schedule");
        let fired = a.iter().flatten().count();
        assert!(fired > 10, "rates this high must fire often, got {fired}");
        for fault in a.iter().flatten() {
            match *fault {
                AppendFault::ShortWrite { keep } => assert!(keep < 64),
                AppendFault::BitFlip { bit } => assert!(bit < 64 * 8),
            }
        }
    }

    #[test]
    fn durability_sync_stream_is_independent_of_appends() {
        let plan = DurabilityFaultPlan {
            seed: 9,
            short_write_rate: 0.0,
            fsync_error_rate: 0.5,
            bit_flip_rate: 0.0,
        };
        // Sync decisions must not shift when the append count differs.
        let mut a = plan.injector(0);
        let mut b = plan.injector(0);
        for i in 0..50 {
            let _ = a.on_append(i, 32);
        }
        let sa: Vec<bool> = (0..64).map(|i| a.on_sync(i)).collect();
        let sb: Vec<bool> = (0..64).map(|i| b.on_sync(i)).collect();
        assert_eq!(sa, sb);
        assert!(sa.iter().any(|&x| x) && sa.iter().any(|&x| !x));
    }

    #[test]
    fn durability_validation_rejects_bad_rates() {
        let mut p = DurabilityFaultPlan::disabled();
        p.bit_flip_rate = -0.1;
        assert!(matches!(p.validate(), Err(ConfigError::FaultRateOutOfRange { .. })));
        let mut p = DurabilityFaultPlan::disabled();
        p.fsync_error_rate = f64::NAN;
        assert!(matches!(p.validate(), Err(ConfigError::FaultRateOutOfRange { .. })));
        assert!(DurabilityFaultPlan::disabled().validate().is_ok());
    }
}
