//! The disk array: placement, queueing, service.

use crate::stats::DiskStats;
use prefetch_trace::BlockId;
use serde::{Deserialize, Serialize};

/// How blocks map to disks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Striping {
    /// RAID-0 style: `disk = (block / stripe_unit) % num_disks`. Adjacent
    /// blocks within a stripe unit share a disk; consecutive units rotate.
    RoundRobin {
        /// Blocks per stripe unit (≥ 1).
        stripe_unit: u64,
    },
    /// A hash of the block id picks the disk: no locality, uniform load.
    Hashed,
}

impl Striping {
    /// The disk serving `block` in an array of `num_disks`.
    #[inline]
    pub fn disk_for(&self, block: BlockId, num_disks: usize) -> usize {
        match *self {
            Striping::RoundRobin { stripe_unit } => {
                ((block.0 / stripe_unit.max(1)) % num_disks as u64) as usize
            }
            Striping::Hashed => {
                // Fibonacci hashing — cheap and well-mixing.
                let h = block.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                (h >> 32) as usize % num_disks
            }
        }
    }
}

/// Configuration of a [`DiskArray`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DiskArrayConfig {
    /// Number of independent disks (≥ 1).
    pub num_disks: usize,
    /// Constant per-access service time in ms (the paper's `T_disk`).
    pub service_ms: f64,
    /// Block placement.
    pub striping: Striping,
}

impl DiskArrayConfig {
    /// An array with the paper's 15 ms service time and 64-block stripe
    /// units.
    pub fn with_disks(num_disks: usize) -> Self {
        DiskArrayConfig {
            num_disks,
            service_ms: 15.0,
            striping: Striping::RoundRobin { stripe_unit: 64 },
        }
    }

    /// Validate the configuration.
    ///
    /// # Panics
    /// Panics on zero disks or a non-positive service time.
    pub fn validate(&self) {
        assert!(self.num_disks >= 1, "need at least one disk");
        assert!(
            self.service_ms.is_finite() && self.service_ms > 0.0,
            "service time must be positive"
        );
        if let Striping::RoundRobin { stripe_unit } = self.striping {
            assert!(stripe_unit >= 1, "stripe unit must be at least one block");
        }
    }
}

/// A disk array with per-disk FIFO service.
///
/// Time is the caller's virtual clock (ms). Each submission occupies its
/// disk for `service_ms` starting when the disk frees up; the returned
/// completion time reflects queueing behind earlier requests.
#[derive(Clone, Debug)]
pub struct DiskArray {
    config: DiskArrayConfig,
    /// Per-disk time at which the disk becomes idle.
    free_at: Vec<f64>,
    stats: DiskStats,
}

impl DiskArray {
    /// An idle array.
    pub fn new(config: DiskArrayConfig) -> Self {
        config.validate();
        DiskArray {
            free_at: vec![0.0; config.num_disks],
            stats: DiskStats::new(config.num_disks),
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DiskArrayConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DiskStats {
        &self.stats
    }

    /// Submit a read of `block` at virtual time `now_ms`; returns the
    /// completion time. FIFO per disk: the request starts when the disk is
    /// free, never before `now_ms`.
    pub fn submit(&mut self, block: BlockId, now_ms: f64) -> f64 {
        debug_assert!(now_ms.is_finite() && now_ms >= 0.0);
        let d = self.config.striping.disk_for(block, self.config.num_disks);
        let start = self.free_at[d].max(now_ms);
        let completion = start + self.config.service_ms;
        self.free_at[d] = completion;
        self.stats.record(d, now_ms, start, completion);
        completion
    }

    /// Would a read of `block` at `now_ms` have to queue?
    pub fn is_busy(&self, block: BlockId, now_ms: f64) -> bool {
        let d = self.config.striping.disk_for(block, self.config.num_disks);
        self.free_at[d] > now_ms
    }

    /// Earliest time any disk is idle (diagnostics).
    pub fn earliest_idle(&self) -> f64 {
        self.free_at.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize) -> DiskArrayConfig {
        DiskArrayConfig { num_disks: n, service_ms: 10.0, striping: Striping::Hashed }
    }

    #[test]
    fn single_disk_serializes_requests() {
        let mut a = DiskArray::new(cfg(1));
        let c1 = a.submit(BlockId(1), 0.0);
        let c2 = a.submit(BlockId(2), 0.0);
        let c3 = a.submit(BlockId(3), 25.0);
        assert_eq!(c1, 10.0);
        assert_eq!(c2, 20.0); // queued behind c1
        assert_eq!(c3, 35.0); // disk idle at 20, request arrives at 25
    }

    #[test]
    fn independent_disks_overlap() {
        let c = DiskArrayConfig {
            num_disks: 2,
            service_ms: 10.0,
            striping: Striping::RoundRobin { stripe_unit: 1 },
        };
        let mut a = DiskArray::new(c);
        // Blocks 0 and 1 land on different disks with stripe unit 1.
        let c0 = a.submit(BlockId(0), 0.0);
        let c1 = a.submit(BlockId(1), 0.0);
        assert_eq!(c0, 10.0);
        assert_eq!(c1, 10.0);
        // Same disk as block 0 → queues.
        let c2 = a.submit(BlockId(2), 0.0);
        assert_eq!(c2, 20.0);
    }

    #[test]
    fn round_robin_striping_layout() {
        let s = Striping::RoundRobin { stripe_unit: 4 };
        // Blocks 0..3 on disk 0, 4..7 on disk 1, 8..11 on disk 2, wrap.
        assert_eq!(s.disk_for(BlockId(0), 3), 0);
        assert_eq!(s.disk_for(BlockId(3), 3), 0);
        assert_eq!(s.disk_for(BlockId(4), 3), 1);
        assert_eq!(s.disk_for(BlockId(11), 3), 2);
        assert_eq!(s.disk_for(BlockId(12), 3), 0);
    }

    #[test]
    fn hashed_striping_spreads_load() {
        let s = Striping::Hashed;
        let mut counts = vec![0usize; 8];
        for b in 0..8000u64 {
            counts[s.disk_for(BlockId(b), 8)] += 1;
        }
        for (d, &c) in counts.iter().enumerate() {
            assert!(
                (800..1200).contains(&c),
                "disk {d} got {c} of 8000 — poor spread"
            );
        }
    }

    #[test]
    fn completions_are_monotone_per_disk() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
        let mut a = DiskArray::new(cfg(4));
        let mut now = 0.0f64;
        let mut last_completion = vec![0.0f64; 4];
        for _ in 0..5000 {
            now += rng.gen_range(0.0..5.0);
            let b = BlockId(rng.gen_range(0..1000));
            let d = a.config().striping.disk_for(b, 4);
            let c = a.submit(b, now);
            assert!(c >= now + 10.0 - 1e-9, "service time violated");
            assert!(c >= last_completion[d], "per-disk FIFO violated");
            last_completion[d] = c;
        }
    }

    #[test]
    fn busy_query_matches_submission_state() {
        let mut a = DiskArray::new(cfg(1));
        assert!(!a.is_busy(BlockId(5), 0.0));
        a.submit(BlockId(5), 0.0);
        assert!(a.is_busy(BlockId(6), 5.0)); // single disk: any block
        assert!(!a.is_busy(BlockId(6), 10.0));
        assert_eq!(a.earliest_idle(), 10.0);
    }

    #[test]
    #[should_panic(expected = "at least one disk")]
    fn zero_disks_panics() {
        DiskArray::new(DiskArrayConfig { num_disks: 0, service_ms: 1.0, striping: Striping::Hashed });
    }
}
