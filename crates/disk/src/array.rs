//! The disk array: placement, queueing, service, fault injection.

use crate::fault::{ConfigError, DiskFault, FaultDecision, FaultInjector, FaultPlan};
use crate::stats::DiskStats;
use prefetch_trace::BlockId;
use serde::{Deserialize, Serialize};

/// How blocks map to disks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Striping {
    /// RAID-0 style: `disk = (block / stripe_unit) % num_disks`. Adjacent
    /// blocks within a stripe unit share a disk; consecutive units rotate.
    RoundRobin {
        /// Blocks per stripe unit (≥ 1).
        stripe_unit: u64,
    },
    /// A hash of the block id picks the disk: no locality, uniform load.
    Hashed,
}

impl Striping {
    /// The disk serving `block` in an array of `num_disks`.
    #[inline]
    pub fn disk_for(&self, block: BlockId, num_disks: usize) -> usize {
        match *self {
            Striping::RoundRobin { stripe_unit } => {
                ((block.0 / stripe_unit.max(1)) % num_disks as u64) as usize
            }
            Striping::Hashed => {
                // Fibonacci hashing — cheap and well-mixing.
                let h = block.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                (h >> 32) as usize % num_disks
            }
        }
    }
}

/// Configuration of a [`DiskArray`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DiskArrayConfig {
    /// Number of independent disks (≥ 1).
    pub num_disks: usize,
    /// Constant per-access service time in ms (the paper's `T_disk`).
    pub service_ms: f64,
    /// Block placement.
    pub striping: Striping,
}

impl DiskArrayConfig {
    /// An array with the paper's 15 ms service time and 64-block stripe
    /// units.
    pub fn with_disks(num_disks: usize) -> Self {
        DiskArrayConfig {
            num_disks,
            service_ms: 15.0,
            striping: Striping::RoundRobin { stripe_unit: 64 },
        }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_disks < 1 {
            return Err(ConfigError::ZeroDisks);
        }
        if !self.service_ms.is_finite() || self.service_ms <= 0.0 {
            return Err(ConfigError::ServiceTimeInvalid(self.service_ms));
        }
        if let Striping::RoundRobin { stripe_unit } = self.striping {
            if stripe_unit < 1 {
                return Err(ConfigError::ZeroStripeUnit);
            }
        }
        Ok(())
    }
}

/// A successfully served read.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Completion {
    /// Virtual time at which the data is in memory.
    pub completion_ms: f64,
    /// Virtual time at which the disk began servicing the read; the gap
    /// from submission to `start_ms` is the queue delay.
    pub start_ms: f64,
    /// Disk that served the read.
    pub disk: usize,
    /// Was a slow-episode latency multiplier applied?
    pub slowed: bool,
}

/// A disk array with per-disk FIFO service and optional fault injection.
///
/// Time is the caller's virtual clock (ms). Each submission occupies its
/// disk for `service_ms` starting when the disk frees up; the returned
/// completion time reflects queueing behind earlier requests. With a
/// [`FaultPlan`] attached, submissions may instead fail with a
/// [`DiskFault`]; an inactive plan (all rates zero) is behaviorally
/// identical to no plan at all.
#[derive(Clone, Debug)]
pub struct DiskArray {
    config: DiskArrayConfig,
    /// Per-disk time at which the disk becomes idle.
    free_at: Vec<f64>,
    stats: DiskStats,
    faults: Option<FaultInjector>,
}

impl DiskArray {
    /// An idle, fault-free array.
    pub fn new(config: DiskArrayConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(DiskArray {
            free_at: vec![0.0; config.num_disks],
            stats: DiskStats::new(config.num_disks),
            faults: None,
            config,
        })
    }

    /// An idle array injecting faults per `plan`. A plan with all rates
    /// zero is accepted and never fires.
    pub fn with_faults(config: DiskArrayConfig, plan: FaultPlan) -> Result<Self, ConfigError> {
        plan.validate()?;
        let mut array = DiskArray::new(config)?;
        if plan.is_active() {
            array.faults = Some(FaultInjector::new(plan, config.num_disks));
        }
        Ok(array)
    }

    /// The configuration.
    pub fn config(&self) -> &DiskArrayConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DiskStats {
        &self.stats
    }

    /// The fault plan in effect, if an active one was attached.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(FaultInjector::plan)
    }

    /// Submit a read of `block` at virtual time `now_ms`.
    ///
    /// On success the returned [`Completion`] carries the time the data is
    /// available; FIFO per disk, the request starts when the disk is free,
    /// never before `now_ms`. With fault injection active the read may
    /// fail instead:
    ///
    /// * [`DiskFault::TransientError`] — the disk was occupied for a full
    ///   service time but the read failed; retry at `busy_until_ms`.
    /// * [`DiskFault::Unavailable`] — rejected instantly; the disk
    ///   recovers at `until_ms`.
    pub fn submit(&mut self, block: BlockId, now_ms: f64) -> Result<Completion, DiskFault> {
        debug_assert!(now_ms.is_finite() && now_ms >= 0.0);
        let d = self.config.striping.disk_for(block, self.config.num_disks);
        let service_ms = match &mut self.faults {
            None => self.config.service_ms,
            Some(injector) => match injector.decide(d, now_ms, self.config.service_ms) {
                FaultDecision::Unavailable { until_ms } => {
                    self.stats.unavailable_rejections += 1;
                    return Err(DiskFault::Unavailable { disk: d, until_ms });
                }
                FaultDecision::TransientError => {
                    let start = self.free_at[d].max(now_ms);
                    let busy_until = start + self.config.service_ms;
                    self.free_at[d] = busy_until;
                    self.stats.record(d, now_ms, start, busy_until);
                    self.stats.transient_errors += 1;
                    return Err(DiskFault::TransientError { disk: d, busy_until_ms: busy_until });
                }
                FaultDecision::Proceed { service_ms, slowed } => {
                    if slowed {
                        self.stats.slowed_requests += 1;
                    }
                    service_ms
                }
            },
        };
        let start = self.free_at[d].max(now_ms);
        let completion = start + service_ms;
        self.free_at[d] = completion;
        self.stats.record(d, now_ms, start, completion);
        Ok(Completion {
            completion_ms: completion,
            start_ms: start,
            disk: d,
            slowed: service_ms > self.config.service_ms,
        })
    }

    /// Would a read of `block` at `now_ms` have to queue?
    pub fn is_busy(&self, block: BlockId, now_ms: f64) -> bool {
        let d = self.config.striping.disk_for(block, self.config.num_disks);
        self.free_at[d] > now_ms
    }

    /// Earliest time any disk is idle (diagnostics).
    pub fn earliest_idle(&self) -> f64 {
        self.free_at.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize) -> DiskArrayConfig {
        DiskArrayConfig { num_disks: n, service_ms: 10.0, striping: Striping::Hashed }
    }

    fn ok_ms(r: Result<Completion, DiskFault>) -> f64 {
        r.expect("fault-free submit failed").completion_ms
    }

    #[test]
    fn single_disk_serializes_requests() {
        let mut a = DiskArray::new(cfg(1)).unwrap();
        let c1 = ok_ms(a.submit(BlockId(1), 0.0));
        let c2 = ok_ms(a.submit(BlockId(2), 0.0));
        let c3 = ok_ms(a.submit(BlockId(3), 25.0));
        assert_eq!(c1, 10.0);
        assert_eq!(c2, 20.0); // queued behind c1
        assert_eq!(c3, 35.0); // disk idle at 20, request arrives at 25
    }

    #[test]
    fn independent_disks_overlap() {
        let c = DiskArrayConfig {
            num_disks: 2,
            service_ms: 10.0,
            striping: Striping::RoundRobin { stripe_unit: 1 },
        };
        let mut a = DiskArray::new(c).unwrap();
        // Blocks 0 and 1 land on different disks with stripe unit 1.
        let c0 = ok_ms(a.submit(BlockId(0), 0.0));
        let c1 = ok_ms(a.submit(BlockId(1), 0.0));
        assert_eq!(c0, 10.0);
        assert_eq!(c1, 10.0);
        // Same disk as block 0 → queues.
        let c2 = ok_ms(a.submit(BlockId(2), 0.0));
        assert_eq!(c2, 20.0);
    }

    #[test]
    fn round_robin_striping_layout() {
        let s = Striping::RoundRobin { stripe_unit: 4 };
        // Blocks 0..3 on disk 0, 4..7 on disk 1, 8..11 on disk 2, wrap.
        assert_eq!(s.disk_for(BlockId(0), 3), 0);
        assert_eq!(s.disk_for(BlockId(3), 3), 0);
        assert_eq!(s.disk_for(BlockId(4), 3), 1);
        assert_eq!(s.disk_for(BlockId(11), 3), 2);
        assert_eq!(s.disk_for(BlockId(12), 3), 0);
    }

    #[test]
    fn hashed_striping_spreads_load() {
        let s = Striping::Hashed;
        let mut counts = [0usize; 8];
        for b in 0..8000u64 {
            counts[s.disk_for(BlockId(b), 8)] += 1;
        }
        for (d, &c) in counts.iter().enumerate() {
            assert!((800..1200).contains(&c), "disk {d} got {c} of 8000 — poor spread");
        }
    }

    #[test]
    fn completions_are_monotone_per_disk() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
        let mut a = DiskArray::new(cfg(4)).unwrap();
        let mut now = 0.0f64;
        let mut last_completion = [0.0f64; 4];
        for _ in 0..5000 {
            now += rng.gen_range(0.0..5.0);
            let b = BlockId(rng.gen_range(0..1000));
            let d = a.config().striping.disk_for(b, 4);
            let c = ok_ms(a.submit(b, now));
            assert!(c >= now + 10.0 - 1e-9, "service time violated");
            assert!(c >= last_completion[d], "per-disk FIFO violated");
            last_completion[d] = c;
        }
    }

    #[test]
    fn busy_query_matches_submission_state() {
        let mut a = DiskArray::new(cfg(1)).unwrap();
        assert!(!a.is_busy(BlockId(5), 0.0));
        a.submit(BlockId(5), 0.0).unwrap();
        assert!(a.is_busy(BlockId(6), 5.0)); // single disk: any block
        assert!(!a.is_busy(BlockId(6), 10.0));
        assert_eq!(a.earliest_idle(), 10.0);
    }

    #[test]
    fn zero_disks_is_a_config_error() {
        let err = DiskArray::new(DiskArrayConfig {
            num_disks: 0,
            service_ms: 1.0,
            striping: Striping::Hashed,
        })
        .unwrap_err();
        assert_eq!(err, ConfigError::ZeroDisks);
    }

    #[test]
    fn bad_service_time_and_stripe_unit_are_config_errors() {
        let err = DiskArrayConfig { num_disks: 1, service_ms: 0.0, striping: Striping::Hashed }
            .validate()
            .unwrap_err();
        assert!(matches!(err, ConfigError::ServiceTimeInvalid(_)));
        let err = DiskArrayConfig {
            num_disks: 1,
            service_ms: 1.0,
            striping: Striping::RoundRobin { stripe_unit: 0 },
        }
        .validate()
        .unwrap_err();
        assert_eq!(err, ConfigError::ZeroStripeUnit);
    }

    #[test]
    fn inactive_fault_plan_matches_fault_free_array() {
        let mut plain = DiskArray::new(cfg(2)).unwrap();
        let mut faulty = DiskArray::with_faults(cfg(2), FaultPlan::disabled()).unwrap();
        assert!(faulty.fault_plan().is_none(), "inactive plan should not install an injector");
        for b in 0..500u64 {
            let now = b as f64 * 1.5;
            assert_eq!(plain.submit(BlockId(b), now), faulty.submit(BlockId(b), now));
        }
        assert_eq!(plain.stats(), faulty.stats());
    }

    #[test]
    fn transient_errors_occupy_the_disk() {
        let plan = FaultPlan { transient_error_rate: 1.0, ..FaultPlan::disabled() };
        let mut a = DiskArray::with_faults(cfg(1), plan).unwrap();
        let err = a.submit(BlockId(1), 0.0).unwrap_err();
        match err {
            DiskFault::TransientError { disk, busy_until_ms } => {
                assert_eq!(disk, 0);
                assert_eq!(busy_until_ms, 10.0);
            }
            other => panic!("expected transient error, got {other:?}"),
        }
        // The failed read held the disk: a submission at t=0 queues behind it.
        let err2 = a.submit(BlockId(2), 0.0).unwrap_err();
        assert_eq!(err2.retry_at_ms(), 20.0);
        assert_eq!(a.stats().transient_errors, 2);
    }

    #[test]
    fn unavailability_rejects_without_consuming_disk_time() {
        let plan =
            FaultPlan { unavailable_rate: 1.0, unavailable_ms: 50.0, ..FaultPlan::disabled() };
        let mut a = DiskArray::with_faults(cfg(1), plan).unwrap();
        let err = a.submit(BlockId(1), 0.0).unwrap_err();
        assert_eq!(err, DiskFault::Unavailable { disk: 0, until_ms: 50.0 });
        assert_eq!(a.earliest_idle(), 0.0, "rejection must not occupy the disk");
        assert_eq!(a.stats().unavailable_rejections, 1);
        assert_eq!(a.stats().total_requests(), 0);
    }

    #[test]
    fn slow_episodes_stretch_service_time() {
        let plan = FaultPlan {
            slow_episode_rate: 1.0,
            slow_factor: 3.0,
            slow_episode_ms: 1000.0,
            ..FaultPlan::disabled()
        };
        let mut a = DiskArray::with_faults(cfg(1), plan).unwrap();
        let c = a.submit(BlockId(1), 0.0).unwrap();
        assert!(c.slowed);
        assert_eq!(c.completion_ms, 30.0);
        assert_eq!(a.stats().slowed_requests, 1);
    }

    #[test]
    fn seeded_fault_streams_reproduce() {
        let plan = FaultPlan::uniform(1234, 0.1, 10.0);
        let mut a = DiskArray::with_faults(cfg(4), plan).unwrap();
        let mut b = DiskArray::with_faults(cfg(4), plan).unwrap();
        for blk in 0..3000u64 {
            let now = blk as f64 * 0.7;
            assert_eq!(a.submit(BlockId(blk), now), b.submit(BlockId(blk), now), "block {blk}");
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().transient_errors > 0, "uniform(0.1) plan never fired");
    }
}
