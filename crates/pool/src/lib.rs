//! Dependency-free work-stealing thread pool with deterministic,
//! index-ordered result collection.
//!
//! [`run_indexed`] evaluates `f(0), f(1), …, f(n-1)` across a set of scoped
//! worker threads and returns the results **in index order**, so callers
//! that previously ran a sequential `map` observe byte-identical output.
//! The determinism contract:
//!
//! * Result `i` of the returned vector is exactly `f(i)` — scheduling never
//!   reorders, drops, or duplicates work items.
//! * If one or more closure invocations panic, every index *smaller* than
//!   the panicking one still runs, and the panic payload that propagates to
//!   the caller is the one from the **smallest** panicking index — the same
//!   payload a sequential left-to-right loop would have surfaced. Payload
//!   types are preserved (`resume_unwind`), so `&str`/`String`/custom
//!   payload downcasts keep working across the pool boundary.
//! * `threads == 1` (or `n <= 1`) bypasses the pool entirely and runs the
//!   plain sequential loop on the calling thread.
//!
//! Scheduling is chunked work stealing: each worker owns a contiguous slice
//! of the index range behind a mutex, pops small batches from its front,
//! and when empty steals the back half of the largest remaining slice. With
//! coarse work items (a sweep cell is milliseconds to minutes of
//! simulation) the per-batch lock is noise.
//!
//! The pool size is a process-global knob ([`set_threads`]) rather than a
//! per-call argument so that deep call chains (CLI → experiment grid →
//! sweep → vendored `rayon` facade) need no plumbing; `0` means "use
//! [`std::thread::available_parallelism`]".

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Global thread-count setting; `0` = auto (available parallelism).
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Set the pool size for subsequent [`run_indexed`] calls. `0` restores the
/// default of one worker per available hardware thread.
pub fn set_threads(n: usize) {
    THREADS.store(n, Ordering::Relaxed);
}

/// The raw configured value (`0` = auto). See [`effective_threads`] for the
/// resolved worker count.
pub fn configured_threads() -> usize {
    THREADS.load(Ordering::Relaxed)
}

/// The number of workers a `run_indexed` call would use right now, after
/// resolving `0` to the machine's available parallelism. Always ≥ 1.
pub fn effective_threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map(usize::from).unwrap_or(1),
        n => n,
    }
}

/// One worker's half-open slice of the index range.
#[derive(Clone, Copy)]
struct Range {
    lo: usize,
    hi: usize,
}

impl Range {
    fn len(&self) -> usize {
        self.hi - self.lo
    }
}

/// Pop a batch from the front of the worker's own range.
fn take_front(range: &Mutex<Range>) -> Option<Range> {
    let mut r = range.lock().unwrap();
    if r.lo >= r.hi {
        return None;
    }
    // Small front batches keep the tail available for thieves.
    let take = (r.len() / 8).clamp(1, 16);
    let batch = Range { lo: r.lo, hi: r.lo + take };
    r.lo += take;
    Some(batch)
}

/// Steal the back half of the largest remaining range.
fn steal(me: usize, ranges: &[Mutex<Range>]) -> Option<Range> {
    loop {
        // Snapshot sizes, then re-check the chosen victim under its lock;
        // ranges only ever shrink, so "all empty" is a stable exit.
        let victim = ranges
            .iter()
            .enumerate()
            .filter(|&(w, _)| w != me)
            .map(|(w, r)| (w, r.lock().unwrap().len()))
            .max_by_key(|&(_, len)| len)?;
        if victim.1 == 0 {
            return None;
        }
        let mut r = ranges[victim.0].lock().unwrap();
        let len = r.len();
        if len == 0 {
            continue; // raced with the owner; rescan
        }
        let take = len.div_ceil(2);
        let batch = Range { lo: r.hi - take, hi: r.hi };
        r.hi -= take;
        return Some(batch);
    }
}

/// Evaluate `f(0..n)` on the configured number of threads and return the
/// results in index order. See the module docs for the determinism and
/// panic-propagation contract.
pub fn run_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = effective_threads().min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }

    // Balanced contiguous slices: worker w owns [w*n/workers, (w+1)*n/workers).
    let ranges: Vec<Mutex<Range>> = (0..workers)
        .map(|w| Mutex::new(Range { lo: w * n / workers, hi: (w + 1) * n / workers }))
        .collect();
    // Smallest panicking index seen so far (usize::MAX = none); lets
    // workers skip items that can no longer influence the outcome.
    let min_panic = AtomicUsize::new(usize::MAX);
    let panic_slot: Mutex<Option<(usize, Box<dyn Any + Send>)>> = Mutex::new(None);

    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let (ranges, f) = (&ranges, &f);
                let (min_panic, panic_slot) = (&min_panic, &panic_slot);
                scope.spawn(move || {
                    let mut out: Vec<(usize, T)> = Vec::new();
                    loop {
                        let batch = match take_front(&ranges[w]) {
                            Some(b) => b,
                            None => match steal(w, ranges) {
                                // Deposit the loot in our own (empty) range
                                // so it stays visible to other thieves.
                                Some(loot) => {
                                    *ranges[w].lock().unwrap() = loot;
                                    continue;
                                }
                                None => break,
                            },
                        };
                        for i in batch.lo..batch.hi {
                            // An item above the smallest recorded panic can
                            // neither be returned nor beat that panic.
                            if i > min_panic.load(Ordering::Relaxed) {
                                continue;
                            }
                            match catch_unwind(AssertUnwindSafe(|| f(i))) {
                                Ok(v) => out.push((i, v)),
                                Err(payload) => {
                                    min_panic.fetch_min(i, Ordering::Relaxed);
                                    let mut slot = panic_slot.lock().unwrap();
                                    match &*slot {
                                        Some((j, _)) if *j <= i => {}
                                        _ => *slot = Some((i, payload)),
                                    }
                                }
                            }
                        }
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => {
                    for (i, v) in part {
                        debug_assert!(slots[i].is_none(), "index {i} produced twice");
                        slots[i] = Some(v);
                    }
                }
                // The worker loop only panics outside `catch_unwind` on
                // internal errors (poisoned lock, allocation failure);
                // surface those as-is.
                Err(payload) => resume_unwind(payload),
            }
        }
    });

    if let Some((_, payload)) = panic_slot.into_inner().unwrap() {
        drop(slots);
        resume_unwind(payload);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, v)| v.unwrap_or_else(|| panic!("pool lost item {i}")))
        .collect()
}

/// Map an owned vector through `f` in parallel, preserving order.
pub fn map_vec<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let cells: Vec<Mutex<Option<T>>> = items.into_iter().map(|v| Mutex::new(Some(v))).collect();
    run_indexed(cells.len(), |i| {
        let item = cells[i].lock().unwrap().take().expect("item taken twice");
        f(item)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Serialise tests that touch the global thread knob.
    static KNOB: Mutex<()> = Mutex::new(());

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
        set_threads(n);
        let r = f();
        set_threads(0);
        r
    }

    #[test]
    fn results_are_index_ordered() {
        for threads in [1, 2, 3, 8, 64] {
            let got = with_threads(threads, || run_indexed(100, |i| i * i));
            let want: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let counts: Vec<AtomicU64> = (0..257).map(|_| AtomicU64::new(0)).collect();
        with_threads(4, || {
            run_indexed(counts.len(), |i| counts[i].fetch_add(1, Ordering::Relaxed))
        });
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<usize> = with_threads(4, || run_indexed(0, |i| i));
        assert!(empty.is_empty());
        assert_eq!(with_threads(4, || run_indexed(1, |i| i + 41)), vec![41]);
    }

    #[test]
    fn skewed_work_is_stolen() {
        // Front-loaded heavy items: without stealing, worker 0 would own
        // all the work while the rest idle. The assertion here is just
        // correctness; the stealing path is exercised by the skew.
        let got = with_threads(4, || {
            run_indexed(64, |i| {
                let spins = if i < 8 { 200_000 } else { 10 };
                let mut acc = i as u64;
                for _ in 0..spins {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                std::hint::black_box(acc);
                i
            })
        });
        assert_eq!(got, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn smallest_index_panic_wins() {
        for threads in [1, 4] {
            let result = with_threads(threads, || {
                catch_unwind(AssertUnwindSafe(|| {
                    run_indexed(50, |i| {
                        if i == 33 {
                            std::panic::panic_any(format!("boom {i}"));
                        }
                        if i == 7 {
                            std::panic::panic_any(format!("boom {i}"));
                        }
                        i
                    })
                }))
            });
            let payload = result.expect_err("must panic");
            let msg = payload.downcast_ref::<String>().expect("String payload survives");
            assert_eq!(msg, "boom 7", "threads={threads}");
        }
    }

    #[test]
    fn str_payloads_survive_the_pool_boundary() {
        let result = with_threads(4, || {
            catch_unwind(AssertUnwindSafe(|| {
                run_indexed(16, |i| {
                    if i == 3 {
                        panic!("static message");
                    }
                    i
                })
            }))
        });
        let payload = result.expect_err("must panic");
        let msg = payload.downcast_ref::<&str>().expect("&str payload survives");
        assert_eq!(*msg, "static message");
    }

    #[test]
    fn indices_below_a_panic_all_run() {
        // Sequential semantics: everything left of the surfaced panic has
        // observably executed.
        let ran: Vec<AtomicU64> = (0..40).map(|_| AtomicU64::new(0)).collect();
        let result = with_threads(4, || {
            catch_unwind(AssertUnwindSafe(|| {
                run_indexed(ran.len(), |i| {
                    ran[i].fetch_add(1, Ordering::Relaxed);
                    if i == 25 {
                        panic!("stop");
                    }
                })
            }))
        });
        assert!(result.is_err());
        for (i, c) in ran.iter().enumerate().take(26) {
            assert_eq!(c.load(Ordering::Relaxed), 1, "index {i} must have run");
        }
    }

    #[test]
    fn map_vec_preserves_order_and_moves_items() {
        let items: Vec<String> = (0..30).map(|i| format!("v{i}")).collect();
        let got = with_threads(4, || map_vec(items, |s| s + "!"));
        let want: Vec<String> = (0..30).map(|i| format!("v{i}!")).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn auto_threads_resolves_to_at_least_one() {
        let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
        set_threads(0);
        assert!(effective_threads() >= 1);
        assert_eq!(configured_threads(), 0);
    }
}
