//! An O(1) LRU cache over [`BlockId`] keys with per-entry values.
//!
//! Implemented as a slab-backed intrusive doubly-linked list plus a
//! `HashMap` index — no per-operation allocation once warmed up, per the
//! HPC guideline of keeping hot paths allocation-free.

use prefetch_hash::{FxBuildHasher, FxHashMap};
use prefetch_trace::BlockId;
use std::collections::HashMap;

const NIL: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct Node<V> {
    block: BlockId,
    value: V,
    prev: u32,
    next: u32,
}

/// LRU-ordered map from blocks to values. The *caller* enforces any
/// capacity bound; `LruCache` itself grows as needed (the partitions of a
/// [`crate::BufferCache`] share one budget, so neither partition has a
/// fixed capacity of its own).
#[derive(Clone, Debug)]
pub struct LruCache<V> {
    map: FxHashMap<u64, u32>,
    nodes: Vec<Node<V>>,
    free: Vec<u32>,
    head: u32, // MRU
    tail: u32, // LRU
}

impl<V> Default for LruCache<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> LruCache<V> {
    /// An empty cache.
    pub fn new() -> Self {
        LruCache {
            map: FxHashMap::default(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// An empty cache with pre-allocated space for `cap` entries.
    pub fn with_capacity(cap: usize) -> Self {
        LruCache {
            map: HashMap::with_capacity_and_hasher(cap, FxBuildHasher::default()),
            nodes: Vec::with_capacity(cap),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether `block` is resident. Does not affect recency.
    pub fn contains(&self, block: BlockId) -> bool {
        self.map.contains_key(&block.0)
    }

    /// Shared reference to the value for `block`. Does not affect recency.
    pub fn peek(&self, block: BlockId) -> Option<&V> {
        self.map.get(&block.0).map(|&i| &self.nodes[i as usize].value)
    }

    /// Mutable reference to the value for `block`. Does not affect recency.
    pub fn peek_mut(&mut self, block: BlockId) -> Option<&mut V> {
        let i = *self.map.get(&block.0)?;
        Some(&mut self.nodes[i as usize].value)
    }

    /// Move `block` to the MRU position; returns `false` if absent.
    pub fn touch(&mut self, block: BlockId) -> bool {
        let Some(&i) = self.map.get(&block.0) else { return false };
        self.unlink(i);
        self.push_front(i);
        true
    }

    /// Insert `block` at the MRU position, replacing (and returning) any
    /// previous value.
    pub fn insert(&mut self, block: BlockId, value: V) -> Option<V> {
        if let Some(&i) = self.map.get(&block.0) {
            let old = std::mem::replace(&mut self.nodes[i as usize].value, value);
            self.unlink(i);
            self.push_front(i);
            return Some(old);
        }
        let i = match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = Node { block, value, prev: NIL, next: NIL };
                i
            }
            None => {
                assert!(self.nodes.len() < u32::MAX as usize, "LruCache overflow");
                self.nodes.push(Node { block, value, prev: NIL, next: NIL });
                (self.nodes.len() - 1) as u32
            }
        };
        self.map.insert(block.0, i);
        self.push_front(i);
        None
    }

    /// Remove `block`, returning its value.
    pub fn remove(&mut self, block: BlockId) -> Option<V>
    where
        V: Default,
    {
        let i = self.map.remove(&block.0)?;
        self.unlink(i);
        self.free.push(i);
        Some(std::mem::take(&mut self.nodes[i as usize].value))
    }

    /// The least-recently-used entry, if any. Does not affect recency.
    pub fn lru(&self) -> Option<(BlockId, &V)> {
        if self.tail == NIL {
            None
        } else {
            let n = &self.nodes[self.tail as usize];
            Some((n.block, &n.value))
        }
    }

    /// The most-recently-used entry, if any.
    pub fn mru(&self) -> Option<(BlockId, &V)> {
        if self.head == NIL {
            None
        } else {
            let n = &self.nodes[self.head as usize];
            Some((n.block, &n.value))
        }
    }

    /// Remove and return the least-recently-used entry.
    pub fn pop_lru(&mut self) -> Option<(BlockId, V)>
    where
        V: Default,
    {
        let tail = self.tail;
        if tail == NIL {
            return None;
        }
        let block = self.nodes[tail as usize].block;
        let v = self.remove(block)?;
        Some((block, v))
    }

    /// Iterate entries from MRU to LRU.
    pub fn iter(&self) -> LruIter<'_, V> {
        LruIter { cache: self, cursor: self.head }
    }

    /// Iterate entries from LRU to MRU.
    pub fn iter_lru(&self) -> LruRevIter<'_, V> {
        LruRevIter { cache: self, cursor: self.tail }
    }

    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let n = &self.nodes[i as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
        self.nodes[i as usize].prev = NIL;
        self.nodes[i as usize].next = NIL;
    }

    fn push_front(&mut self, i: u32) {
        self.nodes[i as usize].prev = NIL;
        self.nodes[i as usize].next = self.head;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }
}

/// MRU→LRU iterator over an [`LruCache`].
pub struct LruIter<'a, V> {
    cache: &'a LruCache<V>,
    cursor: u32,
}

impl<'a, V> Iterator for LruIter<'a, V> {
    type Item = (BlockId, &'a V);
    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor == NIL {
            return None;
        }
        let n = &self.cache.nodes[self.cursor as usize];
        self.cursor = n.next;
        Some((n.block, &n.value))
    }
}

/// LRU→MRU iterator over an [`LruCache`].
pub struct LruRevIter<'a, V> {
    cache: &'a LruCache<V>,
    cursor: u32,
}

impl<'a, V> Iterator for LruRevIter<'a, V> {
    type Item = (BlockId, &'a V);
    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor == NIL {
            return None;
        }
        let n = &self.cache.nodes[self.cursor as usize];
        self.cursor = n.prev;
        Some((n.block, &n.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn order<V>(c: &LruCache<V>) -> Vec<u64> {
        c.iter().map(|(b, _)| b.0).collect()
    }

    #[test]
    fn insert_touch_remove_ordering() {
        let mut c = LruCache::new();
        c.insert(BlockId(1), "a");
        c.insert(BlockId(2), "b");
        c.insert(BlockId(3), "c");
        assert_eq!(order(&c), vec![3, 2, 1]);
        assert!(c.touch(BlockId(1)));
        assert_eq!(order(&c), vec![1, 3, 2]);
        assert_eq!(c.lru().unwrap().0, BlockId(2));
        assert_eq!(c.mru().unwrap().0, BlockId(1));
        assert_eq!(c.remove(BlockId(3)), Some("c"));
        assert_eq!(order(&c), vec![1, 2]);
        assert!(!c.touch(BlockId(3)));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn insert_existing_updates_value_and_recency() {
        let mut c = LruCache::new();
        c.insert(BlockId(1), 10);
        c.insert(BlockId(2), 20);
        assert_eq!(c.insert(BlockId(1), 11), Some(10));
        assert_eq!(order(&c), vec![1, 2]);
        assert_eq!(*c.peek(BlockId(1)).unwrap(), 11);
    }

    #[test]
    fn pop_lru_drains_in_order() {
        let mut c = LruCache::new();
        for i in 0..5u64 {
            c.insert(BlockId(i), i);
        }
        let mut popped = Vec::new();
        while let Some((b, _)) = c.pop_lru() {
            popped.push(b.0);
        }
        assert_eq!(popped, vec![0, 1, 2, 3, 4]);
        assert!(c.is_empty());
        assert!(c.lru().is_none());
        assert!(c.mru().is_none());
    }

    #[test]
    fn slots_are_reused_after_removal() {
        let mut c = LruCache::new();
        for i in 0..100u64 {
            c.insert(BlockId(i), ());
            if i >= 10 {
                c.pop_lru();
            }
        }
        // Slab should not have grown past ~12 nodes.
        assert!(c.nodes.len() <= 12, "slab grew to {}", c.nodes.len());
    }

    #[test]
    fn peek_does_not_affect_recency() {
        let mut c = LruCache::new();
        c.insert(BlockId(1), 1);
        c.insert(BlockId(2), 2);
        let _ = c.peek(BlockId(1));
        let _ = c.peek_mut(BlockId(1));
        assert_eq!(c.lru().unwrap().0, BlockId(1));
    }

    #[test]
    fn matches_reference_model_under_random_ops() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
        let mut c: LruCache<u64> = LruCache::new();
        let mut model: Vec<(u64, u64)> = Vec::new(); // front = MRU
        for step in 0..30_000 {
            let b = rng.gen_range(0..24u64);
            match rng.gen_range(0..4) {
                0 => {
                    let old = c.insert(BlockId(b), step);
                    let pos = model.iter().position(|&(k, _)| k == b);
                    let expect_old = pos.map(|p| model.remove(p).1);
                    assert_eq!(old, expect_old);
                    model.insert(0, (b, step));
                }
                1 => {
                    let hit = c.touch(BlockId(b));
                    let pos = model.iter().position(|&(k, _)| k == b);
                    assert_eq!(hit, pos.is_some());
                    if let Some(p) = pos {
                        let e = model.remove(p);
                        model.insert(0, e);
                    }
                }
                2 => {
                    let got = c.remove(BlockId(b));
                    let pos = model.iter().position(|&(k, _)| k == b);
                    let expect = pos.map(|p| model.remove(p).1);
                    assert_eq!(got, expect);
                }
                _ => {
                    let got = c.pop_lru();
                    let expect = model.pop();
                    assert_eq!(got.map(|(b, v)| (b.0, v)), expect);
                }
            }
            assert_eq!(c.len(), model.len());
            assert_eq!(order(&c), model.iter().map(|&(k, _)| k).collect::<Vec<_>>());
        }
    }
}
