//! # prefetch-cache
//!
//! Buffer-cache substrate for the SC'99 predictive-prefetching study.
//!
//! The paper's system model (Section 3) partitions the file buffer cache
//! into a **demand cache** (blocks that have been referenced; LRU) and a
//! **prefetch cache** (blocks prefetched but not yet referenced). A block
//! migrates prefetch→demand when referenced; when a fetch needs a buffer,
//! the replacement candidate is chosen by comparing the cost of shrinking
//! the demand cache (Eq. 13 — which needs the *marginal LRU hit rate*
//! `H(n) − H(n−1)`) against the cheapest prefetch-cache ejection (Eq. 11).
//!
//! This crate provides the mechanical pieces:
//!
//! * [`LruCache`] — an O(1) intrusive-list LRU with per-entry values;
//! * [`FenwickTree`] — prefix sums, used by the stack-distance estimator;
//! * [`StackDistanceEstimator`] — an online Mattson stack-distance
//!   histogram (O(log n) per reference) with exponential decay, yielding
//!   `H(n)` and `H(n) − H(n−1)` estimates for any cache size;
//! * [`BufferCache`] — the partitioned demand/prefetch cache with the
//!   migration and eviction mechanics, policy-agnostic.
//!
//! Cost/benefit *decisions* live in `prefetch-core`; this crate only moves
//! buffers.

pub mod buffer_cache;
pub mod fenwick;
pub mod lru;
pub mod stack_distance;
mod victim;

pub use buffer_cache::{BufferCache, Partition, PrefetchMeta, PrefetchMetaMut};
pub use fenwick::FenwickTree;
pub use lru::LruCache;
pub use stack_distance::StackDistanceEstimator;
