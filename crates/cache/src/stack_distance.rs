//! Online Mattson stack-distance estimation.
//!
//! Equation 13 of the paper prices the ejection of a demand-cache buffer at
//! `(H(n) − H(n−1)) · (T_driver + T_disk)`, where `H(n)` is the hit rate an
//! LRU cache of `n` buffers would achieve on the reference stream. A
//! single LRU *stack* simulation yields `H(n)` for **all** `n`
//! simultaneously (Mattson et al. 1970): a reference at stack distance `d`
//! hits in every cache of size `> d`.
//!
//! [`StackDistanceEstimator`] maintains that histogram online in
//! O(log U) per reference using the classic timestamp + Fenwick-tree
//! algorithm: each block remembers the slot of its last access, and the
//! number of *live* slots after it equals the number of distinct blocks
//! referenced since — its stack distance. Slots are compacted when the
//! timeline fills.
//!
//! Because workloads shift phase, the histogram supports exponential
//! decay so the marginal hit rate tracks the *recent* stream (the paper
//! computes its dynamic values "during execution").

use crate::fenwick::FenwickTree;
use prefetch_hash::FxHashMap;

/// Online LRU stack-distance histogram with exponential decay.
#[derive(Clone, Debug)]
pub struct StackDistanceEstimator {
    /// block id → timeline slot of the most recent access
    last_access: FxHashMap<u64, u32>,
    /// 1 at live slots
    live: FenwickTree,
    /// next timeline slot
    time: u32,
    /// decayed histogram over stack distances; last bin collects overflow
    hist: Vec<f64>,
    /// decayed weight of cold (first-ever) references
    cold_weight: f64,
    /// total decayed weight (hist mass + cold mass)
    total_weight: f64,
    /// weight of the next sample; grows by 1/decay each reference
    sample_weight: f64,
    /// per-reference decay factor in (0, 1]; 1.0 disables decay
    decay: f64,
}

impl StackDistanceEstimator {
    /// Largest distance tracked exactly; deeper references land in the
    /// overflow bin. 64 Ki bins comfortably covers the paper's largest
    /// cache (16 Ki blocks) with a 4× margin.
    pub const MAX_TRACKED: usize = 1 << 16;

    const INITIAL_TIMELINE: usize = 1 << 12;

    /// A fresh estimator. `decay` is the per-reference weight decay in
    /// `(0, 1]`; `1.0` gives the cumulative (undecayed) histogram. A value
    /// like `0.99999` makes the estimate track roughly the last ~100k
    /// references.
    ///
    /// # Panics
    /// Panics unless `0 < decay <= 1`.
    pub fn new(decay: f64) -> Self {
        assert!(decay > 0.0 && decay <= 1.0, "decay must be in (0,1], got {decay}");
        StackDistanceEstimator {
            last_access: FxHashMap::default(),
            live: FenwickTree::new(Self::INITIAL_TIMELINE),
            time: 0,
            hist: vec![0.0; 256],
            cold_weight: 0.0,
            total_weight: 0.0,
            sample_weight: 1.0,
            decay,
        }
    }

    /// Record a reference to `block`; returns its stack distance
    /// (`None` for a first-ever reference).
    pub fn record(&mut self, block: u64) -> Option<usize> {
        if self.time as usize == self.live.len() {
            self.compact();
        }
        let slot = self.time;
        self.time += 1;

        let distance = match self.last_access.insert(block, slot) {
            Some(prev) => {
                // Distinct blocks referenced strictly after `prev`.
                let after = self.live.total() - self.live.prefix_sum(prev as usize);
                self.live.add(prev as usize, -1);
                Some(after as usize)
            }
            None => None,
        };
        self.live.add(slot as usize, 1);

        let w = self.sample_weight;
        match distance {
            Some(d) => {
                let bin = d.min(Self::MAX_TRACKED);
                if bin >= self.hist.len() {
                    let new_len = (bin + 1).next_power_of_two().min(Self::MAX_TRACKED + 1);
                    self.hist.resize(new_len.max(bin + 1), 0.0);
                }
                self.hist[bin] += w;
            }
            None => self.cold_weight += w,
        }
        self.total_weight += w;
        self.sample_weight /= self.decay;
        if self.sample_weight > 1e100 {
            self.rescale();
        }
        distance
    }

    /// Estimated LRU hit rate H(n) for a cache of `n` buffers.
    pub fn hit_rate(&self, n: usize) -> f64 {
        if self.total_weight <= 0.0 {
            return 0.0;
        }
        let upto = n.min(self.hist.len());
        let mass: f64 = self.hist[..upto].iter().sum();
        mass / self.total_weight
    }

    /// Estimated marginal hit rate H(n) − H(n−1): the value of the n-th
    /// buffer. Smoothed over a window of neighbouring bins because a single
    /// bin of a decayed histogram is noisy; the window grows with `n`
    /// (±max(1, n/16)).
    pub fn marginal_hit_rate(&self, n: usize) -> f64 {
        if n == 0 || self.total_weight <= 0.0 {
            return 0.0;
        }
        let center = n - 1;
        let half = (n / 16).max(1);
        let lo = center.saturating_sub(half);
        let hi = (center + half + 1).min(self.hist.len());
        if hi <= lo {
            return 0.0;
        }
        let mass: f64 = self.hist[lo.min(self.hist.len())..hi].iter().sum();
        mass / (hi - lo) as f64 / self.total_weight
    }

    /// Fraction of references that were first-ever (compulsory).
    pub fn cold_fraction(&self) -> f64 {
        if self.total_weight <= 0.0 {
            0.0
        } else {
            self.cold_weight / self.total_weight
        }
    }

    /// Number of references recorded (undecayed count of distinct blocks
    /// currently tracked).
    pub fn tracked_blocks(&self) -> usize {
        self.last_access.len()
    }

    /// Rebuild the timeline, remapping live slots to 0..live_count.
    fn compact(&mut self) {
        let mut live_slots: Vec<(u32, u64)> =
            self.last_access.iter().map(|(&block, &slot)| (slot, block)).collect();
        live_slots.sort_unstable();
        let needed = (live_slots.len() * 2).max(Self::INITIAL_TIMELINE);
        self.live = FenwickTree::new(needed);
        for (new_slot, &(_, block)) in live_slots.iter().enumerate() {
            self.last_access.insert(block, new_slot as u32);
            self.live.add(new_slot, 1);
        }
        self.time = live_slots.len() as u32;
    }

    /// Divide all weights by the current sample weight to avoid overflow.
    fn rescale(&mut self) {
        let s = self.sample_weight;
        for h in &mut self.hist {
            *h /= s;
        }
        self.cold_weight /= s;
        self.total_weight /= s;
        self.sample_weight = 1.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_match_hand_example() {
        // a b a c b a  →  a:cold b:cold a:1 c:cold b:2 a:2
        let mut e = StackDistanceEstimator::new(1.0);
        assert_eq!(e.record(1), None);
        assert_eq!(e.record(2), None);
        assert_eq!(e.record(1), Some(1));
        assert_eq!(e.record(3), None);
        assert_eq!(e.record(2), Some(2));
        assert_eq!(e.record(1), Some(2));
    }

    #[test]
    fn hit_rates_match_offline_oracle() {
        use prefetch_trace::stats::ReuseDistances;
        use prefetch_trace::synth::TraceKind;
        let trace = TraceKind::Cad.generate(20_000, 5);
        let oracle = ReuseDistances::compute(&trace);
        let mut e = StackDistanceEstimator::new(1.0);
        for b in trace.blocks() {
            e.record(b.0);
        }
        for n in [1, 2, 8, 64, 256, 1024, 4096] {
            let got = e.hit_rate(n);
            let expect = oracle.hit_rate(n);
            assert!((got - expect).abs() < 1e-9, "H({n}): got {got}, expected {expect}");
        }
        assert!((e.cold_fraction() - oracle.cold as f64 / oracle.total as f64).abs() < 1e-9);
    }

    #[test]
    fn repeated_single_block_is_distance_zero() {
        let mut e = StackDistanceEstimator::new(1.0);
        e.record(9);
        for _ in 0..100 {
            assert_eq!(e.record(9), Some(0));
        }
        // A cache of one buffer captures everything after the cold miss.
        assert!((e.hit_rate(1) - 100.0 / 101.0).abs() < 1e-12);
        assert!(e.marginal_hit_rate(1) > 0.0);
        assert_eq!(e.marginal_hit_rate(0), 0.0);
    }

    #[test]
    fn compaction_preserves_distances() {
        // Force many compactions with a timeline-heavy pattern.
        let mut e = StackDistanceEstimator::new(1.0);
        // Cycle over k blocks: steady state distance is k-1.
        let k = 500u64;
        for round in 0..40 {
            for b in 0..k {
                let d = e.record(b);
                if round > 0 {
                    assert_eq!(d, Some((k - 1) as usize), "round {round} block {b}");
                }
            }
        }
        // 20k references over a 4096-slot initial timeline: compaction ran.
        assert!(e.time < 20_000);
    }

    #[test]
    fn decay_tracks_phase_changes() {
        let mut e = StackDistanceEstimator::new(0.999);
        // Phase 1: tight loop over 4 blocks → big marginal value at n<=4.
        for i in 0..4000u64 {
            e.record(i % 4);
        }
        let early = e.hit_rate(4);
        assert!(early > 0.9, "phase-1 hit rate {early}");
        // Phase 2: loop over 64 blocks → H(4) should fall substantially.
        for i in 0..4000u64 {
            e.record(100 + (i % 64));
        }
        let late = e.hit_rate(4);
        assert!(late < 0.3, "decayed H(4) still {late}");
        assert!(e.hit_rate(64) > 0.7);
    }

    #[test]
    fn undecayed_histogram_is_cumulative() {
        let mut e = StackDistanceEstimator::new(1.0);
        for i in 0..1000u64 {
            e.record(i % 10);
        }
        // H is monotone in n and bounded by 1.
        let mut prev = 0.0;
        for n in 0..32 {
            let h = e.hit_rate(n);
            assert!((0.0..=1.0).contains(&h));
            assert!(h >= prev);
            prev = h;
        }
    }

    #[test]
    fn marginal_sums_to_hit_rate_without_smoothing_error() {
        // The smoothed marginals should roughly integrate to H(n).
        let mut e = StackDistanceEstimator::new(1.0);
        for i in 0..5000u64 {
            e.record(i % 37);
        }
        let integral: f64 = (1..=64).map(|n| e.marginal_hit_rate(n)).sum();
        let h = e.hit_rate(64);
        assert!((integral - h).abs() < 0.15, "sum of marginals {integral} vs H(64) {h}");
    }

    #[test]
    #[should_panic(expected = "decay must be in (0,1]")]
    fn zero_decay_panics() {
        StackDistanceEstimator::new(0.0);
    }
}
