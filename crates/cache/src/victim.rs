//! Lazy min-heap index over prefetch-partition ejection costs.
//!
//! The paper's Eq. 11 prices ejecting a prefetched block `b` at
//!
//! ```text
//! C_pr(b) = p_b · (T_driver + T_stall(x)) / (d_remaining(b) − x)
//! ```
//!
//! where `d_remaining = distance − (period − issued_at)` decays by one per
//! access period. The engine needs the *cheapest* such block once per
//! eviction decision; a full scan is O(n) in the prefetch-partition size on
//! a per-reference hot path. This index answers the same argmin query in
//! amortised O(log n) by exploiting three structural facts:
//!
//! 1. `T_driver + T_stall(x)` is a constant within one query, so ordering
//!    by cost equals ordering by the ratio `ρ(b) = p_b / (due_b − period − x)`
//!    with `due_b = issued_at + distance` (the period the block's free
//!    window closes).
//! 2. `ρ(b)` is monotone **non-decreasing** in `period` (the denominator
//!    only shrinks), so any previously computed ρ is a valid *lower bound*
//!    forever after: a classic lazy-heap invariant. A popped minimum is
//!    refreshed to its current ρ and re-inserted; it is the true minimum
//!    exactly when its refreshed value still beats the next entry's stored
//!    lower bound.
//! 3. Once `due_b ≤ period + x` the cost is exactly `0.0` and stays there
//!    (the scan's `d_remaining ≤ x` early-out), so such blocks move to a
//!    dedicated zero-cost set ordered by recency alone.
//!
//! Tie-breaking replicates the exact scan bit-for-bit: the scan keeps the
//! *first* strict minimum in MRU-first iteration order, i.e. among equal
//! costs the most recently inserted block wins. Entries are invalidated
//! lazily: each carries the insertion sequence number and the stored-key
//! bits, and is discarded on pop if the live state disagrees (the block was
//! referenced, evicted, re-inserted, or its meta rewritten).
//!
//! The index works in the ratio domain ρ rather than the engine's fully
//! rounded cost domain. The two orders can disagree only when two distinct
//! `(p, denominator)` pairs produce bit-identical *costs* but distinct
//! ratios (a ~1-ulp rounding coincidence); the engine re-verifies against
//! the exact scan under `debug_assertions`.

use crate::buffer_cache::PrefetchMeta;
use prefetch_hash::FxHashMap;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// Live facts about one resident prefetch entry, against which lazy heap
/// entries are validated.
#[derive(Clone, Copy, Debug)]
struct EntryState {
    /// Insertion sequence number; also the recency tie-breaker.
    seq: u64,
    /// `p_b` at insertion (or last meta rewrite).
    probability: f64,
    /// `issued_at + distance`: the period the free window closes.
    due: u64,
    /// Whether the cost has collapsed to exactly 0.0 (permanent).
    zeroed: bool,
    /// Bit pattern of the key currently stored in the fresh heap for this
    /// entry; older heap copies carry older bits and are discarded.
    key_bits: u64,
}

/// Max-heap entry ordered so that the heap's top is the *best* victim:
/// smallest stored key, then largest sequence number (most recent).
#[derive(Clone, Copy, Debug)]
struct FreshEntry {
    key: f64,
    seq: u64,
    block: u64,
}

impl PartialEq for FreshEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for FreshEntry {}

impl PartialOrd for FreshEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for FreshEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed key comparison: BinaryHeap is a max-heap, so "greater"
        // must mean "cheaper, then more recent".
        other
            .key
            .total_cmp(&self.key)
            .then_with(|| self.seq.cmp(&other.seq))
            .then_with(|| self.block.cmp(&other.block))
    }
}

/// The lazy victim index. Maintained by [`crate::BufferCache`] on every
/// prefetch-partition mutation; queried via
/// [`crate::BufferCache::cheapest_prefetch_victim`].
#[derive(Clone, Debug, Default)]
pub(crate) struct VictimIndex {
    states: FxHashMap<u64, EntryState>,
    /// Entries with (still) positive cost, keyed by a lower bound of ρ.
    fresh: BinaryHeap<FreshEntry>,
    /// `(due, seq, block)` min-heap: drains entries whose free window has
    /// closed into the zero set.
    due: BinaryHeap<Reverse<(u64, u64, u64)>>,
    /// `(seq, block)` max-heap over zero-cost entries: recency decides.
    zeroed: BinaryHeap<(u64, u64)>,
    next_seq: u64,
}

impl VictimIndex {
    /// Register a newly inserted prefetch entry.
    pub(crate) fn on_insert(&mut self, block: u64, meta: &PrefetchMeta) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let due = meta.issued_at.saturating_add(u64::from(meta.distance));
        // p ≤ 0 never yields a positive cost; park it in the zero set now.
        let zeroed = meta.probability <= 0.0 || meta.probability.is_nan();
        // ρ at `period = issued_at` is p/(distance − x) ≥ p/distance, so
        // p/distance is a valid lower bound for any query time (ρ only
        // grows). distance == 0 gives +inf, but such entries are due
        // immediately and drain to the zero set before the bound matters.
        let key = if zeroed { 0.0 } else { meta.probability / f64::from(meta.distance) };
        self.states.insert(
            block,
            EntryState { seq, probability: meta.probability, due, zeroed, key_bits: key.to_bits() },
        );
        if zeroed {
            self.zeroed.push((seq, block));
        } else {
            self.fresh.push(FreshEntry { key, seq, block });
            self.due.push(Reverse((due, seq, block)));
        }
    }

    /// Drop a departed entry (referenced, evicted, or cancelled). Heap
    /// copies are left behind and discarded lazily on pop.
    pub(crate) fn on_remove(&mut self, block: u64) {
        self.states.remove(&block);
    }

    /// Re-register `block` after its meta was rewritten in place, keeping
    /// its insertion recency. Stale heap copies die via seq/key checks.
    pub(crate) fn on_rewrite(&mut self, block: u64, meta: &PrefetchMeta) {
        let Some(st) = self.states.get_mut(&block) else { return };
        let seq = st.seq;
        let due = meta.issued_at.saturating_add(u64::from(meta.distance));
        let zeroed = meta.probability <= 0.0 || meta.probability.is_nan();
        let key = if zeroed { 0.0 } else { meta.probability / f64::from(meta.distance) };
        *st =
            EntryState { seq, probability: meta.probability, due, zeroed, key_bits: key.to_bits() };
        if zeroed {
            self.zeroed.push((seq, block));
        } else {
            self.fresh.push(FreshEntry { key, seq, block });
            self.due.push(Reverse((due, seq, block)));
        }
    }

    /// The block the exact Eq. 11 scan would pick at `period` with free
    /// window `x`: minimum ejection cost, most recent insertion on ties.
    /// Amortised O(log n); `None` iff the prefetch partition is empty.
    ///
    /// Contract: the horizon `period + x` must be non-decreasing across
    /// queries on one index — both the zero set ("cost collapsed to 0.0,
    /// permanently") and the stored lower bounds rely on it. The engine
    /// satisfies this trivially: `x` is a run-constant from `ModelConfig`
    /// and the access period never goes backwards.
    pub(crate) fn query(&mut self, period: u64, x: u32) -> Option<u64> {
        if self.states.is_empty() {
            return None;
        }
        let horizon = period.saturating_add(u64::from(x));

        // (1) Entries whose free window closed cost exactly 0.0, permanently.
        while let Some(&Reverse((due, seq, block))) = self.due.peek() {
            if due > horizon {
                break;
            }
            self.due.pop();
            if let Some(st) = self.states.get_mut(&block) {
                if st.seq == seq && st.due == due && !st.zeroed {
                    st.zeroed = true;
                    self.zeroed.push((seq, block));
                }
            }
        }

        // (2) Any zero-cost entry beats every positive cost; the scan keeps
        // the first zero in MRU order, i.e. the largest seq.
        while let Some(&(seq, block)) = self.zeroed.peek() {
            match self.states.get(&block) {
                Some(st) if st.seq == seq && st.zeroed => return Some(block),
                _ => {
                    self.zeroed.pop();
                }
            }
        }

        // (3) Lazy pop: refresh the top's stale lower bound to its current
        // ρ and accept it once no stored lower bound can still beat it.
        loop {
            let top = self.pop_valid_fresh()?;
            let st = self.states[&top.block];
            // due > horizon is guaranteed by the drain in (1).
            let key_now = st.probability / (st.due - horizon) as f64;
            let next = self.peek_valid_fresh();
            let refreshed = FreshEntry { key: key_now, seq: top.seq, block: top.block };
            self.states.get_mut(&top.block).unwrap().key_bits = key_now.to_bits();
            self.fresh.push(refreshed);
            // `refreshed ≥ next` in heap order means: no other entry's
            // lower bound is cheaper (or equally cheap but more recent), so
            // `top` is the scan's answer. Since stored keys only ever
            // increase toward current ρ, a failed comparison makes the
            // next iteration pop `next` — strict progress, ≤ n refreshes.
            match next {
                None => return Some(top.block),
                Some(n) if refreshed.cmp(&n) != Ordering::Less => return Some(top.block),
                Some(_) => {}
            }
        }
    }

    /// Pop fresh-heap entries until one matches the live state.
    fn pop_valid_fresh(&mut self) -> Option<FreshEntry> {
        loop {
            let e = *self.fresh.peek()?;
            self.fresh.pop();
            if self.is_live(&e) {
                return Some(e);
            }
        }
    }

    /// Peek the best fresh entry that matches the live state, discarding
    /// stale ones on the way.
    fn peek_valid_fresh(&mut self) -> Option<FreshEntry> {
        loop {
            let e = *self.fresh.peek()?;
            if self.is_live(&e) {
                return Some(e);
            }
            self.fresh.pop();
        }
    }

    fn is_live(&self, e: &FreshEntry) -> bool {
        match self.states.get(&e.block) {
            Some(st) => st.seq == e.seq && !st.zeroed && st.key_bits == e.key.to_bits(),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(p: f64, distance: u32, issued_at: u64) -> PrefetchMeta {
        PrefetchMeta { probability: p, distance, issued_at, sequential: false }
    }

    /// The exact scan in ρ space: min cost first, most recent on ties.
    fn reference_pick(entries: &[(u64, PrefetchMeta)], period: u64, x: u32) -> Option<u64> {
        let mut best: Option<(u64, f64)> = None;
        // MRU-first = reverse insertion order, first strict minimum wins.
        for &(b, m) in entries.iter().rev() {
            let elapsed = period.saturating_sub(m.issued_at);
            let remaining = u64::from(m.distance).saturating_sub(elapsed) as u32;
            let cost = if remaining <= x { 0.0 } else { m.probability / f64::from(remaining - x) };
            if best.is_none_or(|(_, bc)| cost < bc) {
                best = Some((b, cost));
            }
        }
        best.map(|(b, _)| b)
    }

    #[test]
    fn matches_the_exact_scan_under_churn() {
        // Deterministic pseudo-random workload of inserts, removals, meta
        // rewrites, and queries at advancing periods. `x` is fixed per
        // index (it is a run constant in the engine — the query contract).
        for x in [0u32, 1, 2, 5] {
            let mut rng = 0x243f_6a88_85a3_08d3u64 ^ u64::from(x);
            let mut next = move || {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                rng
            };
            let mut idx = VictimIndex::default();
            let mut live: Vec<(u64, PrefetchMeta)> = Vec::new();
            let mut period = 0u64;
            for step in 0..4000u64 {
                match next() % 10 {
                    0..=4 => {
                        let block = 10_000 + step;
                        let m = meta(
                            (next() % 1000) as f64 / 1000.0,
                            (next() % 12) as u32,
                            period.saturating_sub(next() % 3),
                        );
                        idx.on_insert(block, &m);
                        live.push((block, m));
                    }
                    5 | 6 if !live.is_empty() => {
                        let i = (next() as usize) % live.len();
                        let (b, _) = live.remove(i);
                        idx.on_remove(b);
                    }
                    7 if !live.is_empty() => {
                        let i = (next() as usize) % live.len();
                        let m = meta((next() % 1000) as f64 / 1000.0, (next() % 12) as u32, period);
                        live[i].1 = m;
                        idx.on_rewrite(live[i].0, &m);
                    }
                    _ => period += next() % 3,
                }
                assert_eq!(
                    idx.query(period, x),
                    reference_pick(&live, period, x),
                    "diverged at step {step}, period {period}, x {x}"
                );
            }
        }
    }

    #[test]
    fn recency_breaks_equal_cost_ties() {
        let mut idx = VictimIndex::default();
        // Identical meta: identical cost at any period; the scan keeps the
        // most recently inserted.
        idx.on_insert(1, &meta(0.5, 10, 0));
        idx.on_insert(2, &meta(0.5, 10, 0));
        idx.on_insert(3, &meta(0.5, 10, 0));
        assert_eq!(idx.query(0, 1), Some(3));
        idx.on_remove(3);
        assert_eq!(idx.query(0, 1), Some(2));
    }

    #[test]
    fn overdue_entries_cost_zero_and_win() {
        let mut idx = VictimIndex::default();
        idx.on_insert(1, &meta(0.9, 100, 0)); // cost 0.9/99 ≈ 0.0091
        idx.on_insert(2, &meta(0.1, 2, 0)); // cost 0.1/1 = 0.1, due at period 2
        assert_eq!(idx.query(0, 1), Some(1), "cheapest positive cost");
        assert_eq!(idx.query(5, 1), Some(2), "overdue → zero cost beats all");
        idx.on_remove(2);
        assert_eq!(idx.query(5, 1), Some(1));
        assert_eq!(idx.query(5, 1), Some(1), "queries are repeatable");
    }

    #[test]
    fn empty_index_returns_none() {
        let mut idx = VictimIndex::default();
        assert_eq!(idx.query(7, 1), None);
        idx.on_insert(4, &meta(0.5, 3, 0));
        idx.on_remove(4);
        assert_eq!(idx.query(7, 1), None);
    }
}
