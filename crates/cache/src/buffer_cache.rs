//! The partitioned demand/prefetch buffer cache (paper Figure 2).
//!
//! One pool of `capacity` buffers is split dynamically between a **demand
//! cache** (blocks that have been referenced; LRU ordered) and a **prefetch
//! cache** (blocks prefetched but not yet referenced). The three arrows of
//! the paper's Figure 2 map to:
//!
//! * (i)/(ii) reclaiming a buffer from either partition — [`BufferCache::evict_demand_lru`]
//!   and [`BufferCache::evict_prefetch`] (the *choice* is the policy's,
//!   driven by Eq. 11 vs Eq. 13);
//! * (iii) a referenced prefetch block migrating into the demand cache —
//!   handled inside [`BufferCache::reference`].
//!
//! The struct enforces the single invariant `demand + prefetch ≤ capacity`
//! and leaves all replacement *decisions* to the caller.

use crate::lru::LruCache;
use crate::victim::VictimIndex;
use prefetch_trace::BlockId;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

/// Which partition a block lives in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Partition {
    /// Previously referenced blocks (LRU replacement).
    Demand,
    /// Prefetched, not-yet-referenced blocks.
    Prefetch,
}

/// Bookkeeping attached to each prefetched block, recorded at prefetch time
/// and consumed by the Eq. 11 ejection-cost computation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PrefetchMeta {
    /// Path probability `p_b` the prefetch tree assigned when the block was
    /// chosen.
    pub probability: f64,
    /// Depth `d_b` (expected accesses until use) at prefetch time.
    pub distance: u32,
    /// Access period in which the prefetch was issued.
    pub issued_at: u64,
    /// Whether this block was fetched by one-block-lookahead (`next-limit`)
    /// rather than the prefetch tree; such blocks are subject to the
    /// 10%-of-cache partition cap (paper Section 9).
    pub sequential: bool,
}

/// Outcome of referencing a block.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RefOutcome {
    /// Hit in the demand cache (block moved to MRU).
    DemandHit,
    /// Hit in the prefetch cache (block migrated to the demand cache); the
    /// prefetch bookkeeping is returned.
    PrefetchHit(PrefetchMeta),
    /// Not resident; the caller must fetch it (and free a buffer first if
    /// the cache is full).
    Miss,
}

/// The partitioned buffer cache.
#[derive(Clone, Debug)]
pub struct BufferCache {
    capacity: usize,
    demand: LruCache<()>,
    prefetch: LruCache<PrefetchMeta>,
    /// Number of prefetch-cache entries with `meta.sequential` set, kept
    /// incrementally so the `next-limit` partition cap is O(1) to check.
    sequential_count: usize,
    /// Lazy min-heap over prefetch ejection costs (see [`crate::victim`]),
    /// kept in sync with the prefetch partition on every mutation. In a
    /// `RefCell` because the argmin query is logically read-only (`&self`)
    /// but physically restructures the heaps.
    victims: RefCell<VictimIndex>,
}

impl BufferCache {
    /// A cache of `capacity` buffers, all initially free.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache needs at least one buffer");
        BufferCache {
            capacity,
            demand: LruCache::with_capacity(capacity),
            prefetch: LruCache::new(),
            sequential_count: 0,
            victims: RefCell::new(VictimIndex::default()),
        }
    }

    /// Number of resident prefetched blocks that were issued by
    /// one-block-lookahead (`meta.sequential`). O(1).
    pub fn sequential_prefetch_len(&self) -> usize {
        self.sequential_count
    }

    /// Total buffer count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Buffers currently in the demand partition.
    pub fn demand_len(&self) -> usize {
        self.demand.len()
    }

    /// Buffers currently in the prefetch partition.
    pub fn prefetch_len(&self) -> usize {
        self.prefetch.len()
    }

    /// Total occupied buffers.
    pub fn len(&self) -> usize {
        self.demand.len() + self.prefetch.len()
    }

    /// Whether no buffers are occupied.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Unoccupied buffers.
    pub fn free_buffers(&self) -> usize {
        self.capacity - self.len()
    }

    /// Whether every buffer is occupied.
    pub fn is_full(&self) -> bool {
        self.len() == self.capacity
    }

    /// Where `block` currently resides, if cached. Does not touch recency.
    pub fn whereis(&self, block: BlockId) -> Option<Partition> {
        if self.demand.contains(block) {
            Some(Partition::Demand)
        } else if self.prefetch.contains(block) {
            Some(Partition::Prefetch)
        } else {
            None
        }
    }

    /// Whether `block` is resident in either partition.
    pub fn contains(&self, block: BlockId) -> bool {
        self.whereis(block).is_some()
    }

    /// Reference `block`: demand hits are touched to MRU, prefetch hits
    /// migrate to the demand cache (Figure 2 arrow iii), misses are
    /// reported for the caller to handle.
    pub fn reference(&mut self, block: BlockId) -> RefOutcome {
        if self.demand.touch(block) {
            return RefOutcome::DemandHit;
        }
        if let Some(meta) = self.prefetch.remove(block) {
            self.sequential_count -= meta.sequential as usize;
            self.victims.get_mut().on_remove(block.0);
            self.demand.insert(block, ());
            return RefOutcome::PrefetchHit(meta);
        }
        RefOutcome::Miss
    }

    /// Insert a demand-fetched block at the demand MRU position.
    ///
    /// # Panics
    /// Panics if the cache is full (free a buffer first) or the block is
    /// already resident.
    pub fn insert_demand(&mut self, block: BlockId) {
        assert!(!self.is_full(), "insert_demand on a full cache");
        assert!(!self.contains(block), "block {block:?} already cached");
        self.demand.insert(block, ());
    }

    /// Insert a prefetched block into the prefetch cache.
    ///
    /// # Panics
    /// Panics if the cache is full or the block is already resident.
    pub fn insert_prefetch(&mut self, block: BlockId, meta: PrefetchMeta) {
        assert!(!self.is_full(), "insert_prefetch on a full cache");
        assert!(!self.contains(block), "block {block:?} already cached");
        self.sequential_count += meta.sequential as usize;
        self.victims.get_mut().on_insert(block.0, &meta);
        self.prefetch.insert(block, meta);
    }

    /// Evict the demand-cache LRU block, returning it (Figure 2 arrow i).
    pub fn evict_demand_lru(&mut self) -> Option<BlockId> {
        self.demand.pop_lru().map(|(b, ())| b)
    }

    /// Evict a specific block from the prefetch cache (arrow ii), returning
    /// its bookkeeping.
    pub fn evict_prefetch(&mut self, block: BlockId) -> Option<PrefetchMeta> {
        let meta = self.prefetch.remove(block)?;
        self.sequential_count -= meta.sequential as usize;
        self.victims.get_mut().on_remove(block.0);
        Some(meta)
    }

    /// Cancel a prefetch whose disk read failed: the reserved buffer is
    /// released and the block is simply not resident. Mechanically an
    /// [`Self::evict_prefetch`], named separately so fault-handling call
    /// sites read as cancellations rather than replacement decisions.
    pub fn cancel_prefetch(&mut self, block: BlockId) -> Option<PrefetchMeta> {
        self.evict_prefetch(block)
    }

    /// Evict the oldest (least recently inserted) prefetched block.
    pub fn evict_prefetch_lru(&mut self) -> Option<(BlockId, PrefetchMeta)> {
        let (b, meta) = self.prefetch.pop_lru()?;
        self.sequential_count -= meta.sequential as usize;
        self.victims.get_mut().on_remove(b.0);
        Some((b, meta))
    }

    /// The demand-cache LRU block (the replacement candidate Eq. 13
    /// prices), without evicting it.
    pub fn demand_lru(&self) -> Option<BlockId> {
        self.demand.lru().map(|(b, _)| b)
    }

    /// Iterate prefetch-cache entries (most recently inserted first) for
    /// ejection-cost scans.
    pub fn prefetch_iter(&self) -> impl Iterator<Item = (BlockId, &PrefetchMeta)> {
        self.prefetch.iter()
    }

    /// Iterate prefetch-cache entries oldest-first (least recently
    /// inserted first), for finding stale victims in O(1) expected.
    pub fn prefetch_iter_lru(&self) -> impl Iterator<Item = (BlockId, &PrefetchMeta)> {
        self.prefetch.iter_lru()
    }

    /// Bookkeeping for a prefetched block.
    pub fn prefetch_meta(&self, block: BlockId) -> Option<&PrefetchMeta> {
        self.prefetch.peek(block)
    }

    /// Mutable bookkeeping for a prefetched block (policies may refresh
    /// probability/distance as the tree cursor moves). Returned through a
    /// guard that re-registers the entry with the victim index when
    /// dropped, so cost-ordering queries see the rewrite.
    pub fn prefetch_meta_mut(&mut self, block: BlockId) -> Option<PrefetchMetaMut<'_>> {
        if !self.prefetch.contains(block) {
            return None;
        }
        Some(PrefetchMetaMut { cache: self, block })
    }

    /// The block the exact Eq. 11 cost scan would evict at `period` with
    /// free window `x`: minimum `p_b/(d_remaining − x)`, ties broken toward
    /// the most recent insertion. Amortised O(log n) against the lazy
    /// victim index; `None` iff the prefetch partition is empty.
    ///
    /// The caller supplies the scale-free ordering inputs only — the
    /// constant `T_driver + T_stall(x)` factor of Eq. 11 does not affect
    /// the argmin (the engine special-cases a zero scale, under which
    /// every cost collapses to `0.0` and MRU order decides).
    pub fn cheapest_prefetch_victim(&self, period: u64, x: u32) -> Option<BlockId> {
        self.victims.borrow_mut().query(period, x).map(BlockId)
    }

    /// Iterate demand-cache blocks from MRU to LRU (diagnostics).
    pub fn demand_iter(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.demand.iter().map(|(b, _)| b)
    }
}

/// Mutable access to a [`PrefetchMeta`], synchronising the victim index
/// with whatever the caller wrote when the guard drops.
pub struct PrefetchMetaMut<'a> {
    cache: &'a mut BufferCache,
    block: BlockId,
}

impl Deref for PrefetchMetaMut<'_> {
    type Target = PrefetchMeta;

    fn deref(&self) -> &PrefetchMeta {
        self.cache.prefetch.peek(self.block).expect("guard holds a resident block")
    }
}

impl DerefMut for PrefetchMetaMut<'_> {
    fn deref_mut(&mut self) -> &mut PrefetchMeta {
        self.cache.prefetch.peek_mut(self.block).expect("guard holds a resident block")
    }
}

impl Drop for PrefetchMetaMut<'_> {
    fn drop(&mut self) {
        let meta = *self.cache.prefetch.peek(self.block).expect("guard holds a resident block");
        self.cache.victims.get_mut().on_rewrite(self.block.0, &meta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(p: f64, d: u32) -> PrefetchMeta {
        PrefetchMeta { probability: p, distance: d, issued_at: 0, sequential: false }
    }

    #[test]
    fn demand_hits_and_misses() {
        let mut c = BufferCache::new(4);
        assert_eq!(c.reference(BlockId(1)), RefOutcome::Miss);
        c.insert_demand(BlockId(1));
        assert_eq!(c.reference(BlockId(1)), RefOutcome::DemandHit);
        assert_eq!(c.whereis(BlockId(1)), Some(Partition::Demand));
        assert_eq!(c.len(), 1);
        assert_eq!(c.free_buffers(), 3);
    }

    #[test]
    fn prefetch_hit_migrates_to_demand() {
        let mut c = BufferCache::new(4);
        c.insert_prefetch(BlockId(7), meta(0.5, 2));
        assert_eq!(c.whereis(BlockId(7)), Some(Partition::Prefetch));
        assert_eq!(c.prefetch_len(), 1);
        match c.reference(BlockId(7)) {
            RefOutcome::PrefetchHit(m) => {
                assert_eq!(m.probability, 0.5);
                assert_eq!(m.distance, 2);
            }
            other => panic!("expected prefetch hit, got {other:?}"),
        }
        assert_eq!(c.whereis(BlockId(7)), Some(Partition::Demand));
        assert_eq!(c.prefetch_len(), 0);
        assert_eq!(c.demand_len(), 1);
        // Total unchanged by the migration.
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn eviction_frees_buffers() {
        let mut c = BufferCache::new(3);
        c.insert_demand(BlockId(1));
        c.insert_demand(BlockId(2));
        c.insert_prefetch(BlockId(3), meta(0.9, 1));
        assert!(c.is_full());
        assert_eq!(c.evict_demand_lru(), Some(BlockId(1)));
        assert_eq!(c.free_buffers(), 1);
        assert_eq!(c.evict_prefetch(BlockId(3)).unwrap().probability, 0.9);
        assert_eq!(c.evict_prefetch(BlockId(3)), None);
        assert_eq!(c.len(), 1);
        assert_eq!(c.demand_lru(), Some(BlockId(2)));
    }

    #[test]
    fn demand_lru_order_follows_references() {
        let mut c = BufferCache::new(4);
        for b in [1u64, 2, 3] {
            c.insert_demand(BlockId(b));
        }
        assert_eq!(c.demand_lru(), Some(BlockId(1)));
        c.reference(BlockId(1));
        assert_eq!(c.demand_lru(), Some(BlockId(2)));
        let order: Vec<u64> = c.demand_iter().map(|b| b.0).collect();
        assert_eq!(order, vec![1, 3, 2]);
    }

    #[test]
    fn evict_prefetch_lru_is_insertion_ordered() {
        let mut c = BufferCache::new(4);
        c.insert_prefetch(BlockId(1), meta(0.1, 1));
        c.insert_prefetch(BlockId(2), meta(0.2, 2));
        let (b, m) = c.evict_prefetch_lru().unwrap();
        assert_eq!(b, BlockId(1));
        assert_eq!(m.probability, 0.1);
    }

    #[test]
    fn cancel_prefetch_releases_the_slot() {
        let mut c = BufferCache::new(2);
        c.insert_prefetch(BlockId(4), meta(0.7, 1));
        assert!(c.is_full() || c.free_buffers() == 1);
        let m = c.cancel_prefetch(BlockId(4)).expect("slot was reserved");
        assert_eq!(m.probability, 0.7);
        assert!(!c.contains(BlockId(4)));
        assert_eq!(c.free_buffers(), 2);
        // Cancelling a block with no slot is a no-op.
        assert_eq!(c.cancel_prefetch(BlockId(4)), None);
    }

    #[test]
    fn prefetch_meta_can_be_updated() {
        let mut c = BufferCache::new(2);
        c.insert_prefetch(BlockId(5), meta(0.3, 4));
        c.prefetch_meta_mut(BlockId(5)).unwrap().distance = 3;
        assert_eq!(c.prefetch_meta(BlockId(5)).unwrap().distance, 3);
    }

    #[test]
    #[should_panic(expected = "full cache")]
    fn insert_into_full_cache_panics() {
        let mut c = BufferCache::new(1);
        c.insert_demand(BlockId(1));
        c.insert_demand(BlockId(2));
    }

    #[test]
    #[should_panic(expected = "already cached")]
    fn double_insert_panics() {
        let mut c = BufferCache::new(2);
        c.insert_demand(BlockId(1));
        c.insert_prefetch(BlockId(1), meta(0.5, 1));
    }

    #[test]
    #[should_panic(expected = "at least one buffer")]
    fn zero_capacity_panics() {
        BufferCache::new(0);
    }
}
