//! Fenwick (binary indexed) tree over `u32` counts.
//!
//! Used by [`crate::StackDistanceEstimator`] to count, in O(log n), how many
//! *distinct* blocks were referenced after a given timestamp — the Mattson
//! stack distance.

/// A Fenwick tree supporting point updates and prefix sums over
/// `0..len`.
#[derive(Clone, Debug)]
pub struct FenwickTree {
    // 1-based internal array; tree[i] covers a range ending at i.
    tree: Vec<u32>,
}

impl FenwickTree {
    /// A tree of `len` zeroed slots.
    pub fn new(len: usize) -> Self {
        FenwickTree { tree: vec![0; len + 1] }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// Whether the tree has zero slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Add `delta` to slot `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn add(&mut self, i: usize, delta: i32) {
        assert!(i < self.len(), "index {i} out of bounds {}", self.len());
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta as i64) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of slots `0..=i` (inclusive). Returns 0 for an empty range via
    /// [`FenwickTree::sum_range`].
    #[inline]
    pub fn prefix_sum(&self, i: usize) -> u64 {
        let mut i = (i + 1).min(self.tree.len() - 1);
        let mut s: u64 = 0;
        while i > 0 {
            s += self.tree[i] as u64;
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Sum over the half-open range `lo..hi`.
    #[inline]
    pub fn sum_range(&self, lo: usize, hi: usize) -> u64 {
        if hi <= lo {
            return 0;
        }
        let upper = self.prefix_sum(hi - 1);
        if lo == 0 {
            upper
        } else {
            upper - self.prefix_sum(lo - 1)
        }
    }

    /// Total of all slots.
    #[inline]
    pub fn total(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.prefix_sum(self.len() - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_updates_and_prefix_sums() {
        let mut f = FenwickTree::new(10);
        f.add(0, 1);
        f.add(4, 2);
        f.add(9, 3);
        assert_eq!(f.prefix_sum(0), 1);
        assert_eq!(f.prefix_sum(3), 1);
        assert_eq!(f.prefix_sum(4), 3);
        assert_eq!(f.prefix_sum(9), 6);
        assert_eq!(f.total(), 6);
    }

    #[test]
    fn negative_deltas() {
        let mut f = FenwickTree::new(4);
        f.add(2, 5);
        f.add(2, -3);
        assert_eq!(f.prefix_sum(2), 2);
        f.add(2, -2);
        assert_eq!(f.total(), 0);
    }

    #[test]
    fn range_sums() {
        let mut f = FenwickTree::new(8);
        for i in 0..8 {
            f.add(i, (i + 1) as i32); // 1,2,...,8
        }
        assert_eq!(f.sum_range(0, 8), 36);
        assert_eq!(f.sum_range(2, 5), 3 + 4 + 5);
        assert_eq!(f.sum_range(5, 5), 0);
        assert_eq!(f.sum_range(7, 3), 0);
        assert_eq!(f.sum_range(0, 1), 1);
    }

    #[test]
    fn matches_naive_oracle() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let n = 64;
        let mut f = FenwickTree::new(n);
        let mut naive = vec![0i64; n];
        for _ in 0..2000 {
            let i = rng.gen_range(0..n);
            // Keep each slot non-negative so u32 storage is valid.
            let delta = rng.gen_range(-3..=3i64).max(-naive[i]) as i32;
            f.add(i, delta);
            naive[i] += delta as i64;
            let q = rng.gen_range(0..n);
            let expect: i64 = naive[..=q].iter().sum();
            assert_eq!(f.prefix_sum(q), expect as u64);
        }
    }

    #[test]
    fn empty_tree() {
        let f = FenwickTree::new(0);
        assert!(f.is_empty());
        assert_eq!(f.total(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_add_panics() {
        let mut f = FenwickTree::new(3);
        f.add(3, 1);
    }
}
