//! Shared dependency-free hashers.
//!
//! Two hashers with two different jobs:
//!
//! * [`Fnv64`] — FNV-1a, 64-bit. Stable across platforms, processes, and
//!   compiler versions, so it is safe to persist (checkpoint fingerprints)
//!   and to embed in on-disk formats. Byte-at-a-time, so it is *not* the
//!   fastest choice for hot in-memory tables.
//! * [`FxHasher`] — the rustc-style "Fx" word-at-a-time multiply-rotate
//!   hash. Much faster than `std`'s SipHash for small fixed-size keys
//!   (integers, tuples of integers) but with no DoS resistance and no
//!   stability guarantee beyond this crate. Use it for in-memory maps on
//!   trusted keys; never persist its output.
//!
//! [`FxHashMap`]/[`FxHashSet`] are drop-in aliases for the std collections
//! with the Fx hasher plugged in.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

// ---------------------------------------------------------------------------
// FNV-1a (stable, persistable)
// ---------------------------------------------------------------------------

/// FNV-1a, 64-bit: tiny, dependency-free, and stable across platforms and
/// runs (unlike `std`'s `DefaultHasher`, whose output is unspecified).
#[derive(Clone, Debug)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    pub fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// The accumulated 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.0
    }

    pub fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Floats hash by bit pattern: distinct values (incl. `-0.0` vs `0.0`)
    /// are distinct configurations.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub fn bool(&mut self, v: bool) {
        self.u64(u64::from(v));
    }

    /// Length-prefixed so `("ab", "c")` and `("a", "bc")` differ.
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    /// Presence tag so `None` and `Some(default)` differ.
    pub fn opt(&mut self, v: Option<u64>) {
        match v {
            None => self.u64(0),
            Some(x) => {
                self.u64(1);
                self.u64(x);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// FxHash (fast, in-memory only)
// ---------------------------------------------------------------------------

const SEED: u64 = 0x517c_c1b7_2722_0a95;

/// Word-at-a-time multiply-rotate hasher in the style of rustc's FxHash.
///
/// Not cryptographic, not DoS-resistant, not stable across crate versions —
/// strictly for in-memory tables over trusted keys.
#[derive(Clone, Debug, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Length tag keeps ["a", ""] and ["", "a"] distinct.
            self.add(u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed by the fast Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed by the fast Fx hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64-bit vectors.
        let mut h = Fnv64::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325); // offset basis
        h.bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        h.bytes(b"foobar");
        assert_eq!(h.finish(), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn fnv_str_is_length_prefixed() {
        let digest = |parts: &[&str]| {
            let mut h = Fnv64::new();
            for p in parts {
                h.str(p);
            }
            h.finish()
        };
        assert_ne!(digest(&["ab", "c"]), digest(&["a", "bc"]));
    }

    #[test]
    fn fnv_option_presence_is_tagged() {
        let digest = |v: Option<u64>| {
            let mut h = Fnv64::new();
            h.opt(v);
            h.finish()
        };
        assert_ne!(digest(None), digest(Some(0)));
    }

    fn fx_of<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(&v)
    }

    #[test]
    fn fx_is_deterministic_within_a_process() {
        assert_eq!(fx_of((3u32, 7u64)), fx_of((3u32, 7u64)));
        assert_ne!(fx_of((3u32, 7u64)), fx_of((7u32, 3u64)));
    }

    #[test]
    fn fx_byte_tail_is_length_tagged() {
        let hash_bytes = |b: &[u8]| {
            let mut h = FxHasher::default();
            h.write(b);
            h.finish()
        };
        assert_ne!(hash_bytes(b"a\0"), hash_bytes(b"a"));
        assert_ne!(hash_bytes(b"12345678x"), hash_bytes(b"12345678"));
    }

    #[test]
    fn fx_map_behaves_like_a_map() {
        let mut m: FxHashMap<(u32, u64), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, u64::from(i) * 3), i);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m.get(&(i, u64::from(i) * 3)), Some(&i));
        }
        assert_eq!(m.remove(&(4, 12)), Some(4));
        assert!(!m.contains_key(&(4, 12)));
    }
}
