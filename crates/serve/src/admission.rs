//! Admission control: tenant-count and aggregate-memory budgets.
//!
//! Overload is refused *at the door* with a typed [`RejectReason`] instead
//! of being discovered later as an allocation failure mid-advice. The
//! budget is charged pessimistically from each tenant's
//! [`crate::tenant::TenantSpec::estimated_bytes`] reservation and released
//! when the tenant closes or is quarantined (its state is dropped either
//! way).

use crate::protocol::RejectReason;

/// Budgets enforced at `OPEN` time.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Maximum simultaneously-open tenants.
    pub max_tenants: usize,
    /// Aggregate reserved-memory budget in bytes; `None` = unlimited.
    pub memory_budget_bytes: Option<u64>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig { max_tenants: 1 << 20, memory_budget_bytes: None }
    }
}

/// Live admission state.
#[derive(Clone, Debug)]
pub struct Admission {
    cfg: AdmissionConfig,
    live: usize,
    reserved_bytes: u64,
}

impl Admission {
    /// Start with nothing admitted.
    pub fn new(cfg: AdmissionConfig) -> Self {
        Admission { cfg, live: 0, reserved_bytes: 0 }
    }

    /// Try to admit a tenant reserving `estimate` bytes.
    pub fn try_admit(&mut self, estimate: u64) -> Result<(), RejectReason> {
        if self.live >= self.cfg.max_tenants {
            return Err(RejectReason::TenantLimit { limit: self.cfg.max_tenants });
        }
        if let Some(budget) = self.cfg.memory_budget_bytes {
            let available = budget.saturating_sub(self.reserved_bytes);
            if estimate > available {
                return Err(RejectReason::MemoryBudget { requested: estimate, available });
            }
        }
        self.live += 1;
        self.reserved_bytes += estimate;
        Ok(())
    }

    /// Release a tenant's reservation (close or quarantine).
    pub fn release(&mut self, estimate: u64) {
        self.live = self.live.saturating_sub(1);
        self.reserved_bytes = self.reserved_bytes.saturating_sub(estimate);
    }

    /// Re-price a live tenant's reservation from `old` to `new` bytes —
    /// the exact-accounting path: tenants are admitted on a pessimistic
    /// estimate and re-charged with `PrefetchTree::bytes_in_use` after
    /// each flush. The adjustment always applies (the tenant is already
    /// resident; refusing would reclaim nothing), but returns `true`
    /// when the aggregate now exceeds the budget so the caller can log
    /// the overshoot — new `OPEN`s are refused until reservations
    /// shrink.
    pub fn recharge(&mut self, old: u64, new: u64) -> bool {
        self.reserved_bytes = self.reserved_bytes.saturating_sub(old).saturating_add(new);
        self.cfg.memory_budget_bytes.is_some_and(|b| self.reserved_bytes > b)
    }

    /// Tenants currently admitted.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Bytes currently reserved.
    pub fn reserved_bytes(&self) -> u64 {
        self.reserved_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_cap_is_enforced_and_released() {
        let mut a = Admission::new(AdmissionConfig { max_tenants: 2, memory_budget_bytes: None });
        a.try_admit(10).unwrap();
        a.try_admit(10).unwrap();
        assert_eq!(a.try_admit(10).unwrap_err(), RejectReason::TenantLimit { limit: 2 });
        a.release(10);
        a.try_admit(10).unwrap();
        assert_eq!(a.live(), 2);
    }

    #[test]
    fn memory_budget_is_enforced_and_released() {
        let mut a =
            Admission::new(AdmissionConfig { max_tenants: 100, memory_budget_bytes: Some(100) });
        a.try_admit(60).unwrap();
        let err = a.try_admit(60).unwrap_err();
        assert_eq!(err, RejectReason::MemoryBudget { requested: 60, available: 40 });
        a.try_admit(40).unwrap();
        assert_eq!(a.reserved_bytes(), 100);
        a.release(60);
        a.try_admit(50).unwrap();
    }

    #[test]
    fn recharge_reprices_and_reports_overshoot() {
        let mut a =
            Admission::new(AdmissionConfig { max_tenants: 100, memory_budget_bytes: Some(100) });
        a.try_admit(80).unwrap();
        // Shrinking to the measured size frees headroom for new opens.
        assert!(!a.recharge(80, 30));
        assert_eq!(a.reserved_bytes(), 30);
        a.try_admit(60).unwrap();
        // Growth past the budget is absorbed but reported...
        assert!(a.recharge(30, 50));
        assert_eq!(a.reserved_bytes(), 110);
        // ...and blocks further admission until something shrinks.
        assert!(a.try_admit(1).is_err());
        assert!(!a.recharge(50, 20));
        a.try_admit(1).unwrap();
    }
}
