//! Crash durability for the service: per-tenant write-ahead logs,
//! periodic checkpoints, and the typed recovery vocabulary.
//!
//! Every admitted tenant gets an append-only `prefetch-wal` log at
//! `<wal_dir>/<name>.wal` holding its complete accepted history: one
//! `O` record (the resolved [`TenantSpec`], re-encoded in the `OPEN`
//! option grammar), one `E` record per accepted event, `S`/`H` markers
//! for attributed skips and sheds (so `FINAL` counters survive a
//! crash), `P` when the chaos hook arms, and `C` at close. Appends
//! happen at *accept* time — before the event is processed — and a
//! group-commit pass ([`prefetch_wal::GroupCommit`]) syncs dirty logs
//! at each batch end, before the batch's responses are released; under
//! `--fsync always` every acknowledged response is therefore durable.
//!
//! Recovery (`Service::recover`) replays each live log **in full**
//! through a fresh tenant: a tenant's advice stream is a pure function
//! of its own ordered events (the crate's determinism contract), so the
//! replayed advice — file and counters — is bit-identical to the
//! uninterrupted run. Periodic checkpoints (`<name>.ckpt.pftree`, with
//! one `.prev` generation) exist to bound *degraded* recovery: a log
//! longer than `--recover-cap-events` is not replayed but warm-started
//! from the freshest readable checkpoint, trading the simulator's cache
//! state for O(1) restart. Damage is classified by the scan: torn tails
//! (crash artifacts) are truncated and the log resumes; corruption
//! quarantines that one tenant with a typed [`RecoveryError`] while
//! every sibling recovers normally.

use crate::tenant::{TenantDefaults, TenantSpec, TenantState};
use prefetch_sim::PolicySpec;
use prefetch_wal::{AppendLog, FsyncPolicy, GroupCommit};
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Durability configuration carried inside `ServeOpts`.
#[derive(Clone, Debug)]
pub struct WalOpts {
    /// Per-tenant WAL directory; `None` disables durability entirely.
    pub dir: Option<PathBuf>,
    /// When the group-commit pass syncs dirty logs.
    pub fsync: FsyncPolicy,
    /// Checkpoint a tenant's tree after this many logged events
    /// (0 disables checkpointing).
    pub checkpoint_every: u64,
    /// Run recovery from `dir` before serving.
    pub recover: bool,
    /// Replay at most this many events per tenant; longer logs recover
    /// degraded from the freshest checkpoint (0 = unbounded replay).
    pub recover_cap_events: u64,
}

impl Default for WalOpts {
    fn default() -> Self {
        WalOpts {
            dir: None,
            fsync: FsyncPolicy::Always,
            checkpoint_every: 4096,
            recover: false,
            recover_cap_events: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Record codec
// ---------------------------------------------------------------------------

/// One decoded WAL record (see the module docs for the grammar).
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// Tenant admitted: the resolved spec, and whether a warm-start base
    /// snapshot (`<name>.base.pftree`) was captured at open.
    Open {
        /// Resolved configuration the tenant was admitted under.
        spec: TenantSpec,
        /// Replay must warm-start from the captured base snapshot.
        base: bool,
    },
    /// One accepted access event.
    Event(u64),
    /// A malformed line was charged to this tenant (`skipped` counter).
    Skip,
    /// An event was shed by backpressure (`shed` counter).
    Shed,
    /// The chaos hook armed: the next event processing panics.
    PanicArm,
    /// The tenant closed cleanly (its snapshot, if any, was saved first).
    Close,
}

/// Render a policy in the `OPEN` option grammar, so the `O` record
/// round-trips through `TenantSpec::from_opts`. Variants the grammar
/// cannot express (never produced by `from_opts`) render to their
/// rejected names, which recovery surfaces as a typed quarantine rather
/// than silently mis-replaying.
fn render_policy(p: &PolicySpec) -> String {
    match p {
        PolicySpec::NoPrefetch => "no-prefetch".into(),
        PolicySpec::NextLimit => "next-limit".into(),
        PolicySpec::Tree => "tree".into(),
        PolicySpec::TreeNextLimit => "tree-next-limit".into(),
        PolicySpec::TreeLvc => "tree-lvc".into(),
        PolicySpec::TreeReanchor => "tree-reanchor".into(),
        PolicySpec::TreeThreshold(t) => format!("tree-threshold={t}"),
        PolicySpec::TreeChildren(k) => format!("tree-children={k}"),
        PolicySpec::PerfectSelector => "perfect-selector".into(),
        PolicySpec::PanicProbe { .. } => "panic-probe".into(),
    }
}

impl WalRecord {
    /// Encode to the record payload (ASCII, one logical line).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            WalRecord::Open { spec, base } => {
                let mut s = format!(
                    "O cache={} policy={} nodes={} overflow={} base={}",
                    spec.cache_blocks,
                    render_policy(&spec.policy),
                    spec.node_limit,
                    if spec.freeze { "freeze" } else { "evict" },
                    u8::from(*base),
                );
                if let Some(d) = spec.disks {
                    s.push_str(&format!(" disks={d}"));
                }
                if spec.fault_rate > 0.0 {
                    s.push_str(&format!(
                        " fault_rate={} fault_seed={}",
                        spec.fault_rate, spec.fault_seed
                    ));
                }
                s.into_bytes()
            }
            WalRecord::Event(block) => format!("E {block}").into_bytes(),
            WalRecord::Skip => b"S".to_vec(),
            WalRecord::Shed => b"H".to_vec(),
            WalRecord::PanicArm => b"P".to_vec(),
            WalRecord::Close => b"C".to_vec(),
        }
    }

    /// Decode one record payload.
    pub fn decode(payload: &[u8]) -> Result<WalRecord, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "record is not UTF-8".to_string())?;
        let mut fields = text.split_ascii_whitespace();
        match fields.next() {
            Some("O") => {
                let mut base = false;
                let mut opts: Vec<(String, String)> = Vec::new();
                for opt in fields {
                    let Some((k, v)) = opt.split_once('=') else {
                        return Err(format!("O option {opt:?} is not key=value"));
                    };
                    if k == "base" {
                        base = v == "1";
                    } else {
                        opts.push((k.to_owned(), v.to_owned()));
                    }
                }
                // Every field is explicit in the record, so the defaults
                // in force at replay time cannot skew the spec.
                let spec = TenantSpec::from_opts(&opts, &TenantDefaults::default())
                    .map_err(|e| format!("O record does not resolve: {}", e.render("?")))?;
                Ok(WalRecord::Open { spec, base })
            }
            Some("E") => {
                let raw = fields.next().ok_or("E record lacks a block")?;
                let block = raw.parse().map_err(|_| format!("E block {raw:?} is not a u64"))?;
                Ok(WalRecord::Event(block))
            }
            Some("S") => Ok(WalRecord::Skip),
            Some("H") => Ok(WalRecord::Shed),
            Some("P") => Ok(WalRecord::PanicArm),
            Some("C") => Ok(WalRecord::Close),
            other => Err(format!("unknown record tag {other:?}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Live-side bookkeeping
// ---------------------------------------------------------------------------

/// One tenant's open log plus its checkpoint countdown.
pub(crate) struct TenantLog {
    pub(crate) log: AppendLog,
    /// Events appended since the last checkpoint.
    pub(crate) since_ckpt: u64,
}

/// The service's durability state: the WAL directory, every open
/// tenant log (keyed by slot index), the group-commit tracker, and the
/// counters surfaced in `BYE` and the recovery bench artifact.
pub(crate) struct Durability {
    dir: PathBuf,
    pub(crate) commit: GroupCommit,
    pub(crate) checkpoint_every: u64,
    pub(crate) logs: BTreeMap<usize, TenantLog>,
    /// Records appended across all logs.
    pub(crate) appends: u64,
    /// Successful group-commit fsync passes (log-level syncs).
    pub(crate) fsyncs: u64,
    /// Sync failures (each degrades its tenant to in-memory).
    pub(crate) sync_errors: u64,
    /// Tenants that lost durability mid-run and kept serving in-memory.
    pub(crate) degraded_tenants: u64,
    /// Checkpoint snapshots written.
    pub(crate) checkpoints: u64,
}

impl Durability {
    /// Open the durability layer, creating the WAL directory.
    pub(crate) fn new(dir: &Path, fsync: FsyncPolicy, checkpoint_every: u64) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        Ok(Durability {
            dir: dir.to_path_buf(),
            commit: GroupCommit::new(fsync),
            checkpoint_every,
            logs: BTreeMap::new(),
            appends: 0,
            fsyncs: 0,
            sync_errors: 0,
            degraded_tenants: 0,
            checkpoints: 0,
        })
    }

    /// The WAL directory.
    pub(crate) fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of a tenant's WAL file.
    pub(crate) fn wal_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.wal"))
    }

    /// Path of a tenant's warm-start base snapshot (captured at open so
    /// replay starts from the same tree the live tenant did, even after
    /// later checkpoints overwrite the main snapshot).
    pub(crate) fn base_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.base.pftree"))
    }

    /// Path of a tenant's freshest checkpoint snapshot.
    pub(crate) fn ckpt_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.ckpt.pftree"))
    }

    /// Path of the previous checkpoint generation.
    pub(crate) fn ckpt_prev_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.ckpt.pftree.prev"))
    }

    /// Create a fresh log for a newly admitted tenant and append its
    /// `O` record.
    pub(crate) fn create_log(
        &mut self,
        name: &str,
        spec: &TenantSpec,
        base: bool,
    ) -> io::Result<TenantLog> {
        let mut log = AppendLog::create(&self.wal_path(name))?;
        log.append(&WalRecord::Open { spec: spec.clone(), base }.encode())?;
        self.appends += 1;
        self.commit.note(1);
        Ok(TenantLog { log, since_ckpt: 0 })
    }

    /// Append one record to a tenant's log (no-op when the tenant has no
    /// log — already degraded). Errors must degrade the tenant.
    pub(crate) fn append(&mut self, idx: usize, record: &WalRecord) -> io::Result<()> {
        let Some(t) = self.logs.get_mut(&idx) else { return Ok(()) };
        t.log.append(&record.encode())?;
        self.appends += 1;
        self.commit.note(1);
        if matches!(record, WalRecord::Event(_)) {
            t.since_ckpt += 1;
        }
        Ok(())
    }

    /// Delete every on-disk artifact of a closed tenant (log, base
    /// snapshot, checkpoint generations). Best-effort: the tenant is
    /// gone either way, and a surviving log ends in `C`, which recovery
    /// treats as closed.
    pub(crate) fn retire(&mut self, idx: usize, name: &str) {
        self.logs.remove(&idx);
        for path in [
            self.wal_path(name),
            self.base_path(name),
            self.ckpt_path(name),
            self.ckpt_prev_path(name),
        ] {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Drop a tenant's log without touching its files (mid-run
    /// degradation keeps the history for postmortem, quarantine keeps it
    /// so recovery reproduces the failure).
    pub(crate) fn drop_log(&mut self, idx: usize) {
        self.logs.remove(&idx);
    }

    /// Sync every dirty log; returns the slot indices whose sync failed
    /// (the caller degrades those tenants).
    pub(crate) fn sync_all(&mut self) -> Vec<usize> {
        let mut failed = Vec::new();
        for (&idx, t) in self.logs.iter_mut() {
            if t.log.dirty() == 0 {
                continue;
            }
            match t.log.sync() {
                Ok(()) => self.fsyncs += 1,
                Err(_) => {
                    self.sync_errors += 1;
                    failed.push(idx);
                }
            }
        }
        failed
    }

    /// Slot indices whose checkpoint countdown expired.
    pub(crate) fn checkpoint_due(&mut self) -> Vec<usize> {
        if self.checkpoint_every == 0 {
            return Vec::new();
        }
        let every = self.checkpoint_every;
        self.logs
            .iter_mut()
            .filter_map(|(&idx, t)| {
                if t.since_ckpt >= every {
                    t.since_ckpt = 0;
                    Some(idx)
                } else {
                    None
                }
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Recovery vocabulary
// ---------------------------------------------------------------------------

/// Why one tenant could not be recovered (the other tenants are
/// unaffected; the damaged one is quarantined with this reason).
#[derive(Clone, Debug, PartialEq)]
pub enum RecoveryError {
    /// The scan found damage no crash can produce.
    Corrupt {
        /// Byte offset of the damage.
        at: u64,
        /// Scanner's cause.
        reason: String,
    },
    /// A record decoded to garbage or violated the protocol (no leading
    /// `O`, a duplicate `O`, records after `C`).
    Malformed {
        /// Record index in the log.
        index: usize,
        /// What was wrong.
        reason: String,
    },
    /// Admission control refused the restored tenant (the budget shrank
    /// between runs).
    AdmissionRefused(String),
    /// The log could not be read at all.
    Io(String),
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Corrupt { at, reason } => {
                write!(f, "corrupt wal at byte {at}: {reason}")
            }
            RecoveryError::Malformed { index, reason } => {
                write!(f, "malformed wal record {index}: {reason}")
            }
            RecoveryError::AdmissionRefused(r) => write!(f, "admission refused: {r}"),
            RecoveryError::Io(e) => write!(f, "wal unreadable: {e}"),
        }
    }
}

/// What `Service::recover` did, per class; rendered into the recovery
/// bench artifact and the startup log line.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Tenants restored by full replay (bit-identical state).
    pub replayed: u64,
    /// Tenants warm-started from a checkpoint because their log
    /// exceeded the replay cap (tree restored, cache state lost).
    pub degraded: u64,
    /// Logs that ended in `C`: the tenant closed cleanly, nothing to do.
    pub closed: u64,
    /// Tenants quarantined by a typed [`RecoveryError`] (or by a panic
    /// faithfully reproduced during replay).
    pub quarantined: u64,
    /// Logs whose torn tail was truncated before resuming.
    pub torn_truncated: u64,
    /// Events replayed across all tenants.
    pub replayed_events: u64,
    /// Wall-clock recovery time.
    pub elapsed_ms: u64,
    /// Per-tenant failure detail, in recovery order.
    pub errors: Vec<(String, String)>,
}

/// Decode and sequence-check a scanned log: exactly one leading `O`,
/// nothing after `C`. Returns the records (first is always the `Open`).
pub(crate) fn decode_log(records: &[Vec<u8>]) -> Result<Vec<WalRecord>, RecoveryError> {
    let mut out = Vec::with_capacity(records.len());
    for (index, payload) in records.iter().enumerate() {
        let rec = WalRecord::decode(payload)
            .map_err(|reason| RecoveryError::Malformed { index, reason })?;
        match (&rec, index, out.last()) {
            (WalRecord::Open { .. }, 0, _) => {}
            (WalRecord::Open { .. }, _, _) => {
                return Err(RecoveryError::Malformed {
                    index,
                    reason: "duplicate O record".into(),
                });
            }
            (_, 0, _) => {
                return Err(RecoveryError::Malformed {
                    index,
                    reason: "first record is not O".into(),
                });
            }
            (_, _, Some(WalRecord::Close)) => {
                return Err(RecoveryError::Malformed { index, reason: "record after C".into() });
            }
            _ => {}
        }
        out.push(rec);
    }
    Ok(out)
}

/// Replay a decoded event history into a fresh tenant (no `catch_unwind`
/// here — the caller wraps each event so a reproduced panic quarantines
/// exactly like the live run). Returns events applied.
pub(crate) fn apply_record(state: &mut TenantState, record: &WalRecord) -> bool {
    match record {
        WalRecord::Open { .. } | WalRecord::Close => false,
        WalRecord::Event(block) => {
            state.process_event(*block);
            true
        }
        WalRecord::Skip => {
            state.skipped += 1;
            false
        }
        WalRecord::Shed => {
            state.shed += 1;
            false
        }
        WalRecord::PanicArm => {
            state.panic_armed = true;
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(pairs: &[(&str, &str)]) -> TenantSpec {
        let opts: Vec<(String, String)> =
            pairs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        TenantSpec::from_opts(&opts, &TenantDefaults::default()).unwrap()
    }

    #[test]
    fn records_roundtrip() {
        let cases = vec![
            WalRecord::Open { spec: spec(&[]), base: false },
            WalRecord::Open {
                spec: spec(&[
                    ("cache", "128"),
                    ("policy", "tree-threshold=0.25"),
                    ("nodes", "512"),
                    ("overflow", "freeze"),
                    ("disks", "4"),
                    ("fault_rate", "0.125"),
                    ("fault_seed", "77"),
                ]),
                base: true,
            },
            WalRecord::Event(0),
            WalRecord::Event(u64::MAX),
            WalRecord::Skip,
            WalRecord::Shed,
            WalRecord::PanicArm,
            WalRecord::Close,
        ];
        for rec in cases {
            let back = WalRecord::decode(&rec.encode()).unwrap();
            match (&rec, &back) {
                (WalRecord::Open { spec: a, base: ba }, WalRecord::Open { spec: b, base: bb }) => {
                    assert_eq!(ba, bb);
                    assert_eq!(a.cache_blocks, b.cache_blocks);
                    assert_eq!(a.policy, b.policy);
                    assert_eq!(a.node_limit, b.node_limit);
                    assert_eq!(a.freeze, b.freeze);
                    assert_eq!(a.disks, b.disks);
                    assert_eq!(a.fault_rate, b.fault_rate);
                    assert_eq!(a.fault_seed, b.fault_seed);
                }
                _ => assert_eq!(rec, back),
            }
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        for bad in [&b"X 1"[..], b"E", b"E not-a-number", b"O cache", b"", b"\xff\xfe"] {
            assert!(WalRecord::decode(bad).is_err(), "{bad:?} must not decode");
        }
    }

    #[test]
    fn sequence_violations_are_typed() {
        let img = |recs: &[WalRecord]| recs.iter().map(|r| r.encode()).collect::<Vec<_>>();
        let open = WalRecord::Open { spec: spec(&[]), base: false };

        // Event before open.
        let e = decode_log(&img(&[WalRecord::Event(1)])).unwrap_err();
        assert!(matches!(e, RecoveryError::Malformed { index: 0, .. }), "{e}");

        // Duplicate open.
        let e = decode_log(&img(&[open.clone(), open.clone()])).unwrap_err();
        assert!(matches!(e, RecoveryError::Malformed { index: 1, .. }), "{e}");

        // Records after close.
        let e =
            decode_log(&img(&[open.clone(), WalRecord::Close, WalRecord::Event(3)])).unwrap_err();
        assert!(matches!(e, RecoveryError::Malformed { index: 2, .. }), "{e}");

        // The happy path decodes.
        let recs =
            decode_log(&img(&[open, WalRecord::Event(1), WalRecord::Shed, WalRecord::Close]))
                .unwrap();
        assert_eq!(recs.len(), 4);
    }

    #[test]
    fn unexpressible_policies_fail_closed() {
        let mut s = spec(&[]);
        s.policy = PolicySpec::PerfectSelector;
        let rec = WalRecord::Open { spec: s, base: false };
        assert!(WalRecord::decode(&rec.encode()).is_err());
    }
}
