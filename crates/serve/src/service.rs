//! The multi-tenant advisor service core.
//!
//! [`Service`] owns the tenant registry and processes request lines in
//! batches. Within a batch, per-tenant event queues are built in arrival
//! order and then flushed across the `prefetch-pool` workers — one tenant
//! is one work item, so the pool's work stealing spreads thousands of
//! tenants over the cores while each tenant's own events stay strictly
//! ordered. Every flush runs under its own `catch_unwind`: a panicking
//! tenant (chaos hook or real policy bug) is quarantined through the
//! `prefetch-core` [`Quarantine`] machinery and reported with a typed
//! `PANIC` response; its siblings — including those sharing the same
//! worker — never notice.
//!
//! ## Fault domains
//!
//! * **tenant** — panic, malformed input, memory blowup: contained by
//!   `catch_unwind`, per-tenant node budgets, and per-tenant skip
//!   counters; the blast radius is one tenant.
//! * **shard (worker)** — a pool worker only ever holds one tenant's lock
//!   at a time and the panic never crosses the `catch_unwind`, so a
//!   poisoned tenant mutex is recovered (`into_inner`) and the slot is
//!   retired.
//! * **listener** — parse errors and overload are answered with typed
//!   `ERR`/`SHED`/`REJECT` lines, never a disconnect.
//! * **process** — graceful drain emits deterministic per-tenant `FINAL`
//!   reports and flushes telemetry before exit.
//!
//! ## Determinism
//!
//! A tenant's advice stream is a pure function of its own event sequence:
//! tenant state is touched only under its slot lock, events are applied in
//! arrival order, and nothing a sibling does feeds back into the
//! computation. Any `--threads N` therefore yields byte-identical
//! per-tenant advice streams (asserted by the crate's integration tests
//! and the `serve-chaos` CI job).

use crate::admission::{Admission, AdmissionConfig};
use crate::protocol::{parse_line, render_reject_tally, RejectReason, Request, N_REJECT_REASONS};
use crate::tenant::{BatchCounts, PendingMetrics, TenantDefaults, TenantSpec, TenantState};
use crate::wal::{Durability, RecoveryError, RecoveryReport, WalOpts, WalRecord};
use prefetch_core::Quarantine;
use prefetch_hash::FxHashMap;
use prefetch_telemetry::registry::MetricSet;
use prefetch_telemetry::registry::DEFAULT_SHARDS;
use prefetch_telemetry::{log as tlog, Histogram, MetricsRegistry};
use prefetch_trace::BlockId;
use prefetch_wal::{AppendLog, Tail};
use std::cell::Cell;
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, Once};
use std::time::Instant;

/// Identifies the connection a request arrived on, so responses can be
/// routed back (stdin mode uses a single id 0).
pub type ConnId = u64;

/// Registry metric names for the per-reason reject tally, in
/// [`crate::protocol::REJECT_CODES`] order.
const REJECT_METRIC_NAMES: [&str; N_REJECT_REASONS] = [
    "rejects_tenant_limit",
    "rejects_memory_budget",
    "rejects_quarantined",
    "rejects_unknown_tenant",
    "rejects_duplicate",
    "rejects_bad_config",
];

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServeOpts {
    /// Admission budgets.
    pub admission: AdmissionConfig,
    /// Defaults for `OPEN` options.
    pub defaults: TenantDefaults,
    /// Bounded per-tenant input queue: at most this many events per
    /// tenant per batch; the excess is shed with a typed response.
    pub queue_cap: usize,
    /// Per-tenant advice files are written under this directory.
    pub advice_dir: Option<PathBuf>,
    /// Echo `ADV` lines to the requesting connection (disable for load
    /// tests that only want the advice files and final reports).
    pub echo_advice: bool,
    /// Persist per-tenant prefetch trees as `pftree-snap/v1` snapshots
    /// under this directory: written at `CLOSE` and drain, restored
    /// (warm start) when a tenant of the same name `OPEN`s. A corrupt or
    /// unreadable snapshot is logged and ignored — the tenant opens cold.
    pub snapshot_dir: Option<PathBuf>,
    /// Crash durability: per-tenant write-ahead logs, group commit, and
    /// recovery (see [`crate::wal`]). An unusable WAL directory degrades
    /// the service to in-memory-only with a warning, never a hard exit.
    pub wal: WalOpts,
    /// Append `pfmetrics-snap/v1` JSONL metric snapshots to this file.
    /// Setting it also turns metric *recording* on — without it the
    /// registry is never built and the hot path pays only a branch.
    pub metrics_out: Option<PathBuf>,
    /// Write a metrics snapshot every this many processed events
    /// (checked at batch boundaries); `0` writes only the final
    /// snapshot at drain.
    pub metrics_every: u64,
    /// Per-tenant flight-recorder ring capacity (trace events); `0`
    /// disables tracing.
    pub trace_ring: usize,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            admission: AdmissionConfig::default(),
            defaults: TenantDefaults::default(),
            queue_cap: 1024,
            advice_dir: None,
            echo_advice: true,
            snapshot_dir: None,
            wal: WalOpts::default(),
            metrics_out: None,
            metrics_every: 0,
            trace_ring: 0,
        }
    }
}

/// Why a slot no longer holds live state.
#[derive(Debug)]
enum Gone {
    /// Closed by request; its `FINAL` line was emitted at close time.
    Closed,
    /// Quarantined after a panic, with retained counters and the final
    /// flight-recorder dump for the drain report. Never silently
    /// resurrected: later requests are refused with
    /// `REJECT <tenant> quarantined`.
    Quarantined {
        message: String,
        events: u64,
        skipped: u64,
        shed: u64,
        queue_hwm: u64,
        trace: Vec<String>,
    },
}

/// One tenant slot. The mutex makes slots shareable with pool workers;
/// it is uncontended (a tenant is flushed by exactly one worker per
/// batch) and poison is always recovered — a panic inside a flush is the
/// *expected* failure mode this service exists to contain.
#[derive(Default)]
struct Slot {
    state: Option<TenantState>,
    gone: Option<Gone>,
}

fn lock_slot(slot: &Mutex<Slot>) -> MutexGuard<'_, Slot> {
    slot.lock().unwrap_or_else(|e| e.into_inner())
}

/// Service-wide counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceStats {
    /// Access events processed to advice.
    pub events: u64,
    /// Events dropped by backpressure.
    pub sheds: u64,
    /// Typed request refusals.
    pub rejects: u64,
    /// Malformed lines skipped.
    pub parse_errors: u64,
    /// Tenants admitted.
    pub opens: u64,
    /// Tenants closed by request.
    pub closes: u64,
    /// Tenants quarantined after a panic.
    pub quarantined: u64,
    /// Batches processed.
    pub batches: u64,
}

/// What one tenant's batch flush produced.
struct TenantFlush {
    responses: Vec<(ConnId, String)>,
    latencies_us: Vec<u64>,
    /// Set when the flush panicked: index of the event that was being
    /// processed, and the rendered panic payload.
    panicked: Option<(usize, String)>,
}

/// The multi-tenant advisor service. See the module docs for the fault
/// domains and the determinism contract.
pub struct Service {
    opts: ServeOpts,
    slots: Vec<Arc<Mutex<Slot>>>,
    names: Vec<Arc<str>>,
    index: FxHashMap<String, usize>,
    quarantine: Quarantine,
    admission: Admission,
    /// Service-wide counters (readable between batches).
    pub stats: ServiceStats,
    advice_latency_us: Histogram,
    shutdown: bool,
    started: Instant,
    /// Durability layer; `None` when no WAL directory is configured or
    /// when it was unusable at startup (see `wal_disabled`).
    wal: Option<Durability>,
    /// Why durability was disabled at startup, when it was requested
    /// but the directory could not be used.
    wal_disabled: Option<String>,
    /// Report of the recovery pass, when one ran.
    recovery: Option<RecoveryReport>,
    /// Sharded metrics registry; built only when `metrics_out` asks for
    /// recording, so the plain path stays unmetered.
    registry: Option<Arc<MetricsRegistry>>,
    /// Per-slot reject tallies, indexed like `slots` (grown lazily).
    tallies: Vec<[u64; N_REJECT_REASONS]>,
    /// Service-wide reject tally by [`RejectReason`] code.
    reject_global: [u64; N_REJECT_REASONS],
    /// `stats.events` at the last periodic metrics snapshot.
    metrics_last_events: u64,
    /// Metric snapshots written so far (the snapshot header counter).
    metrics_snapshots: u64,
}

impl Service {
    /// Build a service; creates the advice directory when configured.
    ///
    /// An unusable WAL directory does **not** fail construction: the
    /// service degrades to in-memory-only operation with a telemetry
    /// warning and a `wal=degraded` marker in `BYE` — losing durability
    /// must never take down an otherwise healthy advisor.
    pub fn new(opts: ServeOpts) -> std::io::Result<Self> {
        install_quiet_panic_hook();
        if let Some(dir) = &opts.advice_dir {
            std::fs::create_dir_all(dir)?;
        }
        if let Some(dir) = &opts.snapshot_dir {
            std::fs::create_dir_all(dir)?;
        }
        let mut wal_disabled = None;
        let wal = match &opts.wal.dir {
            Some(dir) => match Durability::new(dir, opts.wal.fsync, opts.wal.checkpoint_every) {
                Ok(d) => Some(d),
                Err(e) => {
                    let reason = format!("wal dir {} unusable: {e}", dir.display());
                    tlog::warn("serve_wal_disabled").str("reason", reason.clone()).emit();
                    wal_disabled = Some(reason);
                    None
                }
            },
            None => None,
        };
        let registry =
            opts.metrics_out.as_ref().map(|_| Arc::new(MetricsRegistry::new(DEFAULT_SHARDS)));
        Ok(Service {
            admission: Admission::new(opts.admission),
            opts,
            slots: Vec::new(),
            names: Vec::new(),
            index: FxHashMap::default(),
            // One panic quarantines: a tenant that took down a worker
            // once is never trusted again without operator action.
            quarantine: Quarantine::new(1),
            stats: ServiceStats::default(),
            advice_latency_us: Histogram::new(),
            shutdown: false,
            started: Instant::now(),
            wal,
            wal_disabled,
            recovery: None,
            registry,
            tallies: Vec::new(),
            reject_global: [0; N_REJECT_REASONS],
            metrics_last_events: 0,
            metrics_snapshots: 0,
        })
    }

    /// The live metrics registry, when `metrics_out` enabled recording.
    pub fn registry(&self) -> Option<&MetricsRegistry> {
        self.registry.as_deref()
    }

    /// Whether a `SHUTDOWN` request has been seen (the listener drains
    /// and exits after the current batch).
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown
    }

    /// Tenants currently admitted.
    pub fn live_tenants(&self) -> usize {
        self.admission.live()
    }

    /// The advice-latency histogram (microseconds per event).
    pub fn advice_latency_us(&self) -> &Histogram {
        &self.advice_latency_us
    }

    fn is_quarantined(&self, idx: usize) -> bool {
        self.quarantine.is_quarantined(BlockId(idx as u64))
    }

    /// Process one batch of request lines and return the responses.
    ///
    /// Responses preserve per-tenant request order. Control requests are
    /// answered in line order; event advice for a tenant is grouped at
    /// the point its queue is flushed (inline when a control request for
    /// the same tenant needs the events applied first, otherwise at the
    /// end of the batch).
    pub fn process_batch(&mut self, lines: &[(ConnId, String)]) -> Vec<(ConnId, String)> {
        self.stats.batches += 1;
        let mut out: Vec<(ConnId, String)> = Vec::new();
        let mut pending: FxHashMap<usize, Vec<(ConnId, u64)>> = FxHashMap::default();
        let mut order: Vec<usize> = Vec::new();

        for (conn, raw) in lines {
            let conn = *conn;
            let req = match parse_line(raw) {
                Ok(None) => continue,
                Ok(Some(req)) => req,
                Err(e) => {
                    self.stats.parse_errors += 1;
                    if let Some(t) = &e.tenant {
                        if let Some(&i) = self.index.get(t) {
                            let charged = {
                                let mut guard = lock_slot(&self.slots[i]);
                                match guard.state.as_mut() {
                                    Some(state) => {
                                        state.skipped += 1;
                                        true
                                    }
                                    None => false,
                                }
                            };
                            if charged {
                                self.wal_append(i, &WalRecord::Skip);
                            }
                        }
                    }
                    out.push((conn, format!("ERR parse {}", e.message)));
                    continue;
                }
            };
            match req {
                Request::Event { tenant, block } => match self.index.get(&tenant) {
                    Some(&i) if !self.is_quarantined(i) => {
                        let first = !pending.contains_key(&i);
                        let batch = self.stats.batches;
                        // One lock serves both the liveness check and the
                        // first-enqueue trace record.
                        let gone = {
                            let mut guard = lock_slot(&self.slots[i]);
                            match guard.state.as_mut() {
                                None => true,
                                Some(state) => {
                                    if first {
                                        if let Some(fr) = state.flight_mut() {
                                            fr.record_kv("queue", "batch", batch);
                                        }
                                    }
                                    false
                                }
                            }
                        };
                        if gone {
                            self.reject(&mut out, conn, &tenant, RejectReason::UnknownTenant);
                            continue;
                        }
                        let queue = pending.entry(i).or_insert_with(|| {
                            order.push(i);
                            Vec::new()
                        });
                        if queue.len() >= self.opts.queue_cap {
                            self.stats.sheds += 1;
                            if let Some(state) = lock_slot(&self.slots[i]).state.as_mut() {
                                state.shed += 1;
                            }
                            self.wal_append(i, &WalRecord::Shed);
                            out.push((
                                conn,
                                format!("SHED {tenant} queue-full cap={}", self.opts.queue_cap),
                            ));
                        } else {
                            queue.push((conn, block));
                            // Logged at accept time: the WAL holds exactly
                            // the events that will be processed, in order.
                            self.wal_append(i, &WalRecord::Event(block));
                            if self.wal.as_ref().is_some_and(|w| w.logs.contains_key(&i)) {
                                self.record_flight(i, "wal", "block", block);
                            }
                        }
                    }
                    Some(&i) => {
                        debug_assert!(self.is_quarantined(i));
                        self.reject(&mut out, conn, &tenant, RejectReason::Quarantined);
                    }
                    None => self.reject(&mut out, conn, &tenant, RejectReason::UnknownTenant),
                },
                Request::Open { tenant, opts } => {
                    self.open_tenant(&mut out, conn, tenant, &opts);
                }
                Request::Stats { tenant } => match self.lookup_live(&tenant) {
                    Ok(i) => {
                        self.flush_and_absorb(i, &mut pending, &mut out);
                        let line = lock_slot(&self.slots[i])
                            .state
                            .as_ref()
                            .map(|s| (s.stats_line(), s.queue_hwm));
                        match line {
                            Some((line, queue_hwm)) => {
                                let tally = render_reject_tally(&self.tally(i));
                                let kernel = prefetch_core::kernel::active().name;
                                out.push((
                                    conn,
                                    format!(
                                        "{line} queue_hwm={queue_hwm} rejects={tally} \
                                         kernel={kernel}"
                                    ),
                                ));
                            }
                            // The inline flush itself quarantined it.
                            None => self.reject(&mut out, conn, &tenant, RejectReason::Quarantined),
                        }
                    }
                    Err(reason) => self.reject(&mut out, conn, &tenant, reason),
                },
                Request::Close { tenant } => match self.lookup_live(&tenant) {
                    Ok(i) => {
                        self.flush_and_absorb(i, &mut pending, &mut out);
                        let taken = {
                            let mut guard = lock_slot(&self.slots[i]);
                            let state = guard.state.take();
                            if state.is_some() {
                                guard.gone = Some(Gone::Closed);
                            }
                            state
                        };
                        match taken {
                            Some(mut state) => {
                                // Closing drops the state: drain its last
                                // batch's metric deltas first.
                                if let Some(reg) = self.registry.as_ref() {
                                    reg.update(&self.names[i], |m| {
                                        publish_pending(m, &state.pending_metrics);
                                    });
                                }
                                let line = state.final_line();
                                self.persist_tree(&state);
                                // Snapshot first, then the durable C: a
                                // crash in between replays the tenant
                                // live, never resurrects it half-closed.
                                self.wal_close(i, &tenant);
                                self.admission.release(state.charged_bytes);
                                self.stats.closes += 1;
                                let tally = render_reject_tally(&self.tally(i));
                                out.push((
                                    conn,
                                    format!("{line} queue_hwm={} rejects={tally}", state.queue_hwm),
                                ));
                            }
                            None => self.reject(&mut out, conn, &tenant, RejectReason::Quarantined),
                        }
                    }
                    Err(reason) => self.reject(&mut out, conn, &tenant, reason),
                },
                Request::Panic { tenant } => match self.lookup_live(&tenant) {
                    Ok(i) => {
                        // Events earlier in the batch keep sequential
                        // semantics: apply them before arming the hook.
                        self.flush_and_absorb(i, &mut pending, &mut out);
                        let armed = {
                            let mut guard = lock_slot(&self.slots[i]);
                            match guard.state.as_mut() {
                                Some(state) => {
                                    state.panic_armed = true;
                                    true
                                }
                                None => false,
                            }
                        };
                        if armed {
                            self.wal_append(i, &WalRecord::PanicArm);
                            out.push((conn, format!("OK panic-armed {tenant}")));
                        } else {
                            self.reject(&mut out, conn, &tenant, RejectReason::Quarantined)
                        }
                    }
                    Err(reason) => self.reject(&mut out, conn, &tenant, reason),
                },
                Request::Metrics => {
                    // A snapshot reflects every event accepted before it:
                    // apply everything queued so far, then render.
                    let active: Vec<usize> = order.to_vec();
                    for i in active {
                        self.flush_and_absorb(i, &mut pending, &mut out);
                    }
                    match self.registry.clone() {
                        Some(reg) => {
                            self.refresh_gauges();
                            let text = reg.snapshot().render_prometheus();
                            let mut n = 0u64;
                            for line in text.lines() {
                                out.push((conn, format!("METRIC {line}")));
                                n += 1;
                            }
                            out.push((conn, format!("OK metrics lines={n}")));
                        }
                        None => out.push((conn, "OK metrics lines=0 enabled=false".to_string())),
                    }
                }
                Request::Health => {
                    out.push((conn, self.health_line()));
                }
                Request::Shutdown => {
                    // Apply everything queued so far, then flag the drain.
                    let active: Vec<usize> = order.to_vec();
                    for i in active {
                        self.flush_and_absorb(i, &mut pending, &mut out);
                    }
                    self.shutdown = true;
                    out.push((conn, "OK shutdown".to_string()));
                }
            }
        }

        // Batch end: flush every tenant with queued events across the
        // pool workers. One tenant = one work item; results come back in
        // `order` (first-appearance) order, so the response stream is
        // independent of the worker count.
        let active: Vec<(usize, Vec<(ConnId, u64)>)> = order
            .into_iter()
            .filter_map(|i| {
                let events = pending.remove(&i)?;
                (!events.is_empty()).then_some((i, events))
            })
            .collect();
        if !active.is_empty() {
            let slots = &self.slots;
            let metrics_on = self.registry.is_some();
            let flushes = prefetch_pool::run_indexed(active.len(), |j| {
                let (idx, events) = &active[j];
                flush_tenant(&slots[*idx], events, metrics_on)
            });
            for ((idx, events), flush) in active.iter().zip(flushes) {
                self.absorb_flush(*idx, events, flush, &mut out);
            }
        }
        // Group commit BEFORE the responses leave this method: under
        // `--fsync always` every acknowledged line is durable.
        self.wal_commit_pass();
        self.maybe_write_metrics();
        out
    }

    /// Record one `key=value` flight-recorder stage for a live tenant
    /// (no-op when tracing is off or the tenant is gone). The payload is
    /// two words, so the disabled path really is one branch.
    fn record_flight(&self, idx: usize, stage: &'static str, key: &'static str, v: u64) {
        if self.opts.trace_ring == 0 {
            return;
        }
        if let Some(state) = lock_slot(&self.slots[idx]).state.as_mut() {
            if let Some(fr) = state.flight_mut() {
                fr.record_kv(stage, key, v);
            }
        }
    }

    /// This slot's reject tally (zeros when nothing was ever rejected).
    fn tally(&self, idx: usize) -> [u64; N_REJECT_REASONS] {
        self.tallies.get(idx).copied().unwrap_or([0; N_REJECT_REASONS])
    }

    /// The one-line `HEALTH` response: liveness plus the load/containment
    /// counters an operator triages with first.
    fn health_line(&self) -> String {
        let s = &self.stats;
        let wal = if self.wal.is_some() {
            "on"
        } else if self.wal_disabled.is_some() {
            "degraded"
        } else {
            "off"
        };
        format!(
            "HEALTH status=ok tenants={} opened={} quarantined={} sheds={} rejects={} \
             parse_errors={} batches={} wal={} metrics={} trace_ring={}",
            self.admission.live(),
            s.opens,
            s.quarantined,
            s.sheds,
            s.rejects,
            s.parse_errors,
            s.batches,
            wal,
            if self.registry.is_some() { "on" } else { "off" },
            self.opts.trace_ring,
        )
    }

    /// Append one record to a tenant's WAL; an append failure degrades
    /// that one tenant to in-memory-only (typed, logged, counted) while
    /// everything else keeps its durability.
    fn wal_append(&mut self, idx: usize, record: &WalRecord) {
        let Some(w) = self.wal.as_mut() else { return };
        if let Err(e) = w.append(idx, record) {
            self.degrade_tenant_wal(idx, &format!("append failed: {e}"));
        }
    }

    /// Retire a closing tenant's WAL: durable `C`, then delete its
    /// on-disk artifacts. The close-time snapshot was already saved, so
    /// after this the tenant's whole life collapses to the snapshot.
    fn wal_close(&mut self, idx: usize, tenant: &str) {
        let Some(w) = self.wal.as_mut() else { return };
        let sealed = match w.append(idx, &WalRecord::Close) {
            Ok(()) => match w.logs.get_mut(&idx) {
                Some(t) => match t.log.sync() {
                    Ok(()) => {
                        w.fsyncs += 1;
                        true
                    }
                    Err(_) => {
                        w.sync_errors += 1;
                        false
                    }
                },
                None => false,
            },
            Err(_) => false,
        };
        if sealed {
            w.retire(idx, tenant);
        } else {
            // Could not seal: keep the log on disk — it ends mid-life,
            // so a recovery replays the tenant live, which is the safe
            // direction (at-least-once, never lost).
            w.drop_log(idx);
            tlog::warn("serve_wal_close_unsealed").str("tenant", tenant.to_string()).emit();
        }
    }

    /// Lose durability for one tenant but keep serving it: drop the log
    /// handle (the file stays for postmortem), flag the tenant, count it.
    fn degrade_tenant_wal(&mut self, idx: usize, reason: &str) {
        if let Some(w) = self.wal.as_mut() {
            w.drop_log(idx);
            w.degraded_tenants += 1;
        }
        let mut trace = Vec::new();
        if let Some(state) = lock_slot(&self.slots[idx]).state.as_mut() {
            state.wal_state = "degraded";
            if let Some(fr) = state.flight() {
                trace = fr.dump_lines();
            }
        }
        tlog::warn("serve_wal_degraded")
            .str("tenant", self.names[idx].to_string())
            .str("reason", reason)
            .emit();
        // Losing durability is exactly the moment the request timeline
        // matters: dump the ring to the telemetry log.
        if !trace.is_empty() {
            tlog::warn("serve_wal_degraded_trace")
                .str("tenant", self.names[idx].to_string())
                .u64("lines", trace.len() as u64)
                .str("trace", trace.join(" | "))
                .emit();
        }
    }

    /// Batch-end durability pass: sync dirty logs when the group-commit
    /// policy says so (a failed sync degrades its tenant), then write
    /// any due checkpoint snapshots.
    fn wal_commit_pass(&mut self) {
        let (sync_failures, ckpt_due) = {
            let Some(w) = self.wal.as_mut() else { return };
            let failures = if w.commit.due() { w.sync_all() } else { Vec::new() };
            (failures, w.checkpoint_due())
        };
        for idx in sync_failures {
            self.degrade_tenant_wal(idx, "fsync failed");
        }
        for idx in ckpt_due {
            self.checkpoint_tenant(idx);
        }
    }

    /// Write one tenant's periodic checkpoint: rotate the previous
    /// generation aside, then save a fresh `pftree-snap/v1`. Failures
    /// only warn — checkpoints accelerate degraded recovery, they are
    /// not load-bearing for the sound (full-replay) path.
    fn checkpoint_tenant(&mut self, idx: usize) {
        let name = Arc::clone(&self.names[idx]);
        let (ckpt, prev) = match self.wal.as_ref() {
            Some(w) => (w.ckpt_path(&name), w.ckpt_prev_path(&name)),
            None => return,
        };
        let guard = lock_slot(&self.slots[idx]);
        let Some(state) = guard.state.as_ref() else { return };
        let Some(tree) = state.tree() else { return };
        if ckpt.exists() {
            let _ = std::fs::rename(&ckpt, &prev);
        }
        match tree.save_snapshot(&ckpt) {
            Ok(_) => {
                drop(guard);
                if let Some(w) = self.wal.as_mut() {
                    w.checkpoints += 1;
                }
                tlog::info("serve_wal_checkpoint").str("tenant", name.to_string()).emit();
            }
            Err(e) => {
                drop(guard);
                tlog::warn("serve_wal_checkpoint_failed")
                    .str("tenant", name.to_string())
                    .str("error", e.to_string())
                    .emit();
            }
        }
    }

    /// Look up a live tenant, with the typed reason when it is not.
    fn lookup_live(&self, tenant: &str) -> Result<usize, RejectReason> {
        match self.index.get(tenant) {
            Some(&i) if self.is_quarantined(i) => Err(RejectReason::Quarantined),
            Some(&i) => {
                if lock_slot(&self.slots[i]).state.is_some() {
                    Ok(i)
                } else {
                    Err(RejectReason::UnknownTenant)
                }
            }
            None => Err(RejectReason::UnknownTenant),
        }
    }

    fn reject(
        &mut self,
        out: &mut Vec<(ConnId, String)>,
        conn: ConnId,
        tenant: &str,
        reason: RejectReason,
    ) {
        self.stats.rejects += 1;
        self.reject_global[reason.index()] += 1;
        if let Some(&i) = self.index.get(tenant) {
            if self.tallies.len() <= i {
                self.tallies.resize(i + 1, [0; N_REJECT_REASONS]);
            }
            self.tallies[i][reason.index()] += 1;
        }
        out.push((conn, reason.render(tenant)));
    }

    fn open_tenant(
        &mut self,
        out: &mut Vec<(ConnId, String)>,
        conn: ConnId,
        tenant: String,
        opts: &[(String, String)],
    ) {
        if let Some(&i) = self.index.get(&tenant) {
            if self.is_quarantined(i) {
                return self.reject(out, conn, &tenant, RejectReason::Quarantined);
            }
            let guard = lock_slot(&self.slots[i]);
            if guard.state.is_some() {
                drop(guard);
                return self.reject(out, conn, &tenant, RejectReason::Duplicate);
            }
            // Closed slot: fall through and re-open in place.
        }
        let spec = match TenantSpec::from_opts(opts, &self.opts.defaults) {
            Ok(spec) => spec,
            Err(reason) => return self.reject(out, conn, &tenant, reason),
        };
        if let Err(reason) = self.admission.try_admit(spec.estimated_bytes()) {
            return self.reject(out, conn, &tenant, reason);
        }
        let mut state =
            match TenantState::new(&tenant, spec.clone(), self.opts.advice_dir.as_deref()) {
                Ok(state) => state,
                Err(e) => {
                    self.admission.release(spec.estimated_bytes());
                    return self.reject(
                        out,
                        conn,
                        &tenant,
                        RejectReason::BadConfig(format!("advice file: {e}")),
                    );
                }
            };
        let warm_from = self.try_warm_start(&tenant, &mut state);
        if self.opts.trace_ring > 0 {
            state.enable_flight(self.opts.trace_ring);
            if let Some(fr) = state.flight_mut() {
                fr.record_text(
                    "admission",
                    format!(
                        "cache={} nodes={} warm={}",
                        spec.cache_blocks,
                        spec.node_limit,
                        warm_from.is_some()
                    ),
                );
            }
        }
        // Durability: capture the warm-start base (so replay starts from
        // the very tree this tenant did, even after later checkpoints
        // rewrite the main snapshot), then open the tenant's log. Any
        // failure degrades this tenant to in-memory-only — an `OPEN`
        // is never refused over durability.
        let mut tenant_log = None;
        if let Some(w) = self.wal.as_mut() {
            let base = match &warm_from {
                Some(snap) => std::fs::copy(snap, w.base_path(&tenant)).is_ok(),
                None => false,
            };
            match w.create_log(&tenant, &spec, base) {
                Ok(tl) => {
                    state.wal_state = "on";
                    tenant_log = Some(tl);
                }
                Err(e) => {
                    w.degraded_tenants += 1;
                    state.wal_state = "degraded";
                    tlog::warn("serve_wal_degraded")
                        .str("tenant", tenant.clone())
                        .str("reason", format!("open failed: {e}"))
                        .emit();
                }
            }
        }
        let i = match self.index.get(&tenant) {
            Some(&i) => {
                let mut guard = lock_slot(&self.slots[i]);
                guard.state = Some(state);
                guard.gone = None;
                i
            }
            None => {
                let i = self.slots.len();
                self.slots.push(Arc::new(Mutex::new(Slot { state: Some(state), gone: None })));
                self.names.push(Arc::from(tenant.as_str()));
                self.index.insert(tenant.clone(), i);
                i
            }
        };
        if let (Some(w), Some(tl)) = (self.wal.as_mut(), tenant_log) {
            w.logs.insert(i, tl);
        }
        self.stats.opens += 1;
        out.push((conn, format!("OK open {tenant}")));
    }

    /// Warm-start a freshly-opened tenant from `<snapshot_dir>/<name>.pftree`
    /// when one exists. Restore failures (corrupt, truncated, version
    /// mismatch) are logged and ignored — the tenant opens cold; a bad
    /// snapshot must never refuse an otherwise-valid `OPEN`. A restored
    /// tree immediately re-prices the tenant's reservation to its exact
    /// measured bytes.
    /// Returns the snapshot path when a tree was installed, so the
    /// durability layer can capture it as the tenant's replay base.
    fn try_warm_start(&mut self, tenant: &str, state: &mut TenantState) -> Option<PathBuf> {
        let dir = self.opts.snapshot_dir.as_ref()?;
        let path = dir.join(format!("{tenant}.pftree"));
        if !path.exists() {
            return None;
        }
        match prefetch_tree::PrefetchTree::load_snapshot(&path) {
            Ok(tree) => {
                let nodes = tree.node_count() as u64;
                if state.warm_start(tree) {
                    let resident = state.resident_bytes();
                    let over = self.admission.recharge(state.charged_bytes, resident);
                    state.charged_bytes = resident;
                    tlog::info("serve_warm_start")
                        .str("tenant", tenant)
                        .u64("nodes", nodes)
                        .u64("resident_bytes", resident)
                        .emit();
                    if over {
                        self.log_over_budget();
                    }
                    Some(path)
                } else {
                    tlog::warn("serve_warm_start_dropped")
                        .str("tenant", tenant)
                        .str("reason", "policy keeps no tree")
                        .emit();
                    None
                }
            }
            Err(e) => {
                tlog::warn("serve_snapshot_unreadable")
                    .str("tenant", tenant)
                    .str("path", path.display().to_string())
                    .str("error", e.to_string())
                    .emit();
                None
            }
        }
    }

    /// Persist a tenant's tree under the snapshot directory (close and
    /// drain paths; quarantined tenants are deliberately not persisted —
    /// a state that just took down a worker is not worth resurrecting).
    fn persist_tree(&self, state: &TenantState) {
        let Some(dir) = &self.opts.snapshot_dir else { return };
        let Some(tree) = state.tree() else { return };
        let path = dir.join(format!("{}.pftree", state.name));
        match tree.save_snapshot(&path) {
            Ok(info) => {
                tlog::info("serve_snapshot_saved")
                    .str("tenant", state.name.to_string())
                    .u64("nodes", tree.node_count() as u64)
                    .u64("encoded_bytes", info.encoded_bytes as u64)
                    .bool("entropy_coded", info.entropy_coded)
                    .emit();
            }
            Err(e) => {
                tlog::warn("serve_snapshot_failed")
                    .str("tenant", state.name.to_string())
                    .str("error", e.to_string())
                    .emit();
            }
        }
    }

    fn log_over_budget(&self) {
        tlog::warn("serve_budget_exceeded")
            .u64("reserved_bytes", self.admission.reserved_bytes())
            .emit();
    }

    /// Flush one tenant's queued events inline (control-request path).
    fn flush_and_absorb(
        &mut self,
        idx: usize,
        pending: &mut FxHashMap<usize, Vec<(ConnId, u64)>>,
        out: &mut Vec<(ConnId, String)>,
    ) {
        let Some(events) = pending.get_mut(&idx) else { return };
        if events.is_empty() {
            return;
        }
        let events = std::mem::take(events);
        let flush = flush_tenant(&self.slots[idx], &events, self.registry.is_some());
        self.absorb_flush(idx, &events, flush, out);
    }

    /// Fold one tenant's flush results into service state and responses.
    fn absorb_flush(
        &mut self,
        idx: usize,
        events: &[(ConnId, u64)],
        flush: TenantFlush,
        out: &mut Vec<(ConnId, String)>,
    ) {
        self.stats.events += flush.latencies_us.len() as u64;
        for us in &flush.latencies_us {
            self.advice_latency_us.record(*us);
        }
        // Exact accounting: re-price the reservation from the tenant's
        // measured footprint now that this batch's events are applied.
        // Skipped on a panic — quarantine releases the whole reservation.
        if flush.panicked.is_none() {
            let (old, new) = {
                let mut guard = lock_slot(&self.slots[idx]);
                match guard.state.as_mut() {
                    Some(state) => {
                        let resident = state.resident_bytes();
                        let old = state.charged_bytes;
                        state.charged_bytes = resident;
                        (old, resident)
                    }
                    None => (0, 0),
                }
            };
            if old != new && self.admission.recharge(old, new) {
                self.log_over_budget();
            }
        }
        if self.opts.echo_advice {
            out.extend(flush.responses);
        }
        if let Some((at, message)) = flush.panicked {
            let trace = self.quarantine_tenant(idx, &message);
            let name = Arc::clone(&self.names[idx]);
            let conn = events.get(at).map_or(0, |(c, _)| *c);
            out.push((conn, format!("PANIC {name} quarantined err={message:?}")));
            // The flight-recorder dump rides along with the PANIC line:
            // the last moments of the request lifecycle, already ordered.
            for line in &trace {
                out.push((conn, format!("TRACE {name} {line}")));
            }
            // Events behind the panic are refused explicitly, never
            // silently dropped.
            for (conn, _) in &events[(at + 1).min(events.len())..] {
                self.reject(out, *conn, &name, RejectReason::Quarantined);
            }
        }
    }

    /// Retire a panicked tenant: drop its state (freeing its budget),
    /// retain its counters and flight-recorder dump for the drain report,
    /// and record it in the quarantine so it is never silently
    /// resurrected. Returns the trace dump for immediate emission.
    fn quarantine_tenant(&mut self, idx: usize, message: &str) -> Vec<String> {
        let mut guard = lock_slot(&self.slots[idx]);
        let (events, skipped, shed, charged, queue_hwm, trace) = match guard.state.take() {
            Some(mut state) => {
                state.flush_advice();
                let trace = state.flight().map(|fr| fr.dump_lines()).unwrap_or_default();
                // The dying tenant still publishes the events it served
                // before the panic: drain its pending deltas now, before
                // the state drops.
                if let Some(reg) = self.registry.as_ref() {
                    reg.update(&self.names[idx], |m| {
                        publish_pending(m, &state.pending_metrics);
                    });
                }
                (state.seq, state.skipped, state.shed, state.charged_bytes, state.queue_hwm, trace)
            }
            None => (0, 0, 0, 0, 0, Vec::new()),
        };
        guard.gone = Some(Gone::Quarantined {
            message: message.to_string(),
            events,
            skipped,
            shed,
            queue_hwm,
            trace: trace.clone(),
        });
        drop(guard);
        // Make the poisonous history durable and keep the file: recovery
        // replays it and reproduces this quarantine faithfully.
        if let Some(w) = self.wal.as_mut() {
            if let Some(t) = w.logs.get_mut(&idx) {
                match t.log.sync() {
                    Ok(()) => w.fsyncs += 1,
                    Err(_) => w.sync_errors += 1,
                }
            }
            w.drop_log(idx);
        }
        self.quarantine.record_failure(BlockId(idx as u64));
        if charged > 0 {
            self.admission.release(charged);
        }
        self.stats.quarantined += 1;
        tlog::warn("serve_tenant_quarantined")
            .str("tenant", self.names[idx].to_string())
            .str("err", message)
            .emit();
        trace
    }

    /// Graceful drain: deterministic per-tenant `FINAL` reports in
    /// admission order (quarantined tenants report their retained
    /// counters), then a `BYE` summary.
    pub fn drain(&mut self) -> Vec<String> {
        // Final metrics snapshot first, while every tenant is still live.
        if self.opts.metrics_out.is_some() {
            self.write_metrics_snapshot();
        }
        let mut out = Vec::new();
        for i in 0..self.slots.len() {
            let tally = render_reject_tally(&self.tally(i));
            let mut guard = lock_slot(&self.slots[i]);
            if let Some(state) = guard.state.as_mut() {
                let line = state.final_line();
                out.push(format!("{line} queue_hwm={} rejects={tally}", state.queue_hwm));
                self.persist_tree(state);
            } else if let Some(Gone::Quarantined {
                message,
                events,
                skipped,
                shed,
                queue_hwm,
                trace,
            }) = &guard.gone
            {
                out.push(format!(
                    "FINAL {} events={events} skipped={skipped} shed={shed} quarantined=true \
                     err={message:?} queue_hwm={queue_hwm} rejects={tally}",
                    self.names[i]
                ));
                for line in trace {
                    out.push(format!("TRACE {} {line}", self.names[i]));
                }
            }
            // Closed tenants already reported at close time.
        }
        // Final durability pass: whatever is still dirty becomes durable
        // (a clean drain leaves resumable logs — `--recover` after a
        // graceful shutdown restores the live tenants too).
        if let Some(w) = self.wal.as_mut() {
            // Tenants are already drained; sync_all counts any failures.
            let _ = w.sync_all();
        }
        let s = &self.stats;
        let mut bye = format!(
            "BYE tenants={} events={} sheds={} rejects={} parse_errors={} quarantined={}",
            s.opens, s.events, s.sheds, s.rejects, s.parse_errors, s.quarantined
        );
        bye.push_str(&self.durability_fields());
        out.push(bye);
        self.log_summary();
        out
    }

    /// The durability/recovery fields appended to `BYE` (stable order,
    /// always rendered so consumers can rely on their presence).
    fn durability_fields(&self) -> String {
        let mut s = match &self.wal {
            Some(w) => format!(
                " wal=on wal_appends={} wal_fsyncs={} wal_sync_errors={} wal_degraded={} \
                 checkpoints={}",
                w.appends, w.fsyncs, w.sync_errors, w.degraded_tenants, w.checkpoints
            ),
            None if self.wal_disabled.is_some() => " wal=degraded".to_string(),
            None => " wal=off".to_string(),
        };
        if let Some(r) = &self.recovery {
            s.push_str(&format!(
                " recovered_replayed={} recovered_degraded={} recovered_closed={} \
                 recovered_quarantined={} replayed_events={}",
                r.replayed, r.degraded, r.closed, r.quarantined, r.replayed_events
            ));
        }
        s
    }

    /// Refresh the point-in-time gauges the flush path cannot maintain
    /// incrementally: per-tenant queue high-water marks and calibration
    /// accumulators, plus the service-wide counters and the per-reason
    /// reject tally. Called right before each snapshot/exposition so the
    /// rendered values are current.
    fn refresh_gauges(&mut self) {
        let Some(reg) = self.registry.clone() else { return };
        for i in 0..self.slots.len() {
            let (queue_hwm, cal, pending) = {
                let mut guard = lock_slot(&self.slots[i]);
                let Some(state) = guard.state.as_mut() else { continue };
                (
                    state.queue_hwm,
                    state.calibration().cloned(),
                    std::mem::take(&mut state.pending_metrics),
                )
            };
            reg.update(&self.names[i], |m| {
                publish_pending(m, &pending);
                m.gauge_set("queue_hwm", queue_hwm);
                if let Some(c) = &cal {
                    m.fgauge_set("cal_benefit_err", c.benefit_error());
                    m.fgauge_set("cal_eject_err", c.eject_error());
                    m.fgauge_set("cal_pred_benefit_ms", c.predicted_benefit_ms());
                    m.fgauge_set("cal_real_benefit_ms", c.realized_benefit_ms());
                    m.fgauge_set("cal_pred_eject_ms", c.predicted_eject_ms());
                    m.fgauge_set("cal_real_eject_ms", c.realized_eject_ms());
                }
            });
        }
        let s = self.stats;
        let live = self.admission.live() as u64;
        let rejects = self.reject_global;
        reg.update("", |m| {
            m.gauge_set("tenants_live", live);
            m.gauge_set("tenants_opened", s.opens);
            m.gauge_set("service_events", s.events);
            m.gauge_set("sheds", s.sheds);
            m.gauge_set("rejects", s.rejects);
            m.gauge_set("parse_errors", s.parse_errors);
            m.gauge_set("quarantined", s.quarantined);
            m.gauge_set("batches", s.batches);
            for (name, n) in REJECT_METRIC_NAMES.into_iter().zip(rejects) {
                m.gauge_set(name, n);
            }
        });
    }

    /// Batch-boundary snapshot cadence: write a snapshot once
    /// `metrics_every` further events have been processed. Cadence is
    /// driven by the deterministic event counter, never the wall clock,
    /// so snapshot files are byte-identical at any `--threads N`.
    fn maybe_write_metrics(&mut self) {
        let every = self.opts.metrics_every;
        if every == 0 || self.registry.is_none() {
            return;
        }
        if self.stats.events - self.metrics_last_events < every {
            return;
        }
        self.metrics_last_events = self.stats.events;
        self.write_metrics_snapshot();
    }

    /// Append one `pfmetrics-snap/v1` snapshot (header line + the
    /// `pfmetrics/v1` JSONL body) to the `metrics_out` file. Write
    /// failures warn and keep serving — metrics are never load-bearing.
    fn write_metrics_snapshot(&mut self) {
        let Some(path) = self.opts.metrics_out.clone() else { return };
        self.refresh_gauges();
        let Some(reg) = self.registry.as_ref() else { return };
        let snap = reg.snapshot();
        self.metrics_snapshots += 1;
        let mut buf = format!(
            "{{\"schema\":\"pfmetrics-snap/v1\",\"snapshot\":{},\"events\":{}}}\n",
            self.metrics_snapshots, self.stats.events
        );
        buf.push_str(&snap.render_jsonl());
        let written = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(buf.as_bytes()));
        if let Err(e) = written {
            tlog::warn("serve_metrics_write_failed")
                .str("path", path.display().to_string())
                .str("error", e.to_string())
                .emit();
        }
    }

    /// Emit a live-stats record to the telemetry log (the listener calls
    /// this periodically; with `--log-json` these become the service's
    /// JSONL events endpoint).
    pub fn log_live_stats(&self) {
        let s = &self.stats;
        tlog::info("serve_stats")
            .u64("tenants_live", self.admission.live() as u64)
            .u64("tenants_opened", s.opens)
            .u64("events", s.events)
            .u64("sheds", s.sheds)
            .u64("rejects", s.rejects)
            .u64("parse_errors", s.parse_errors)
            .u64("quarantined", s.quarantined)
            .u64("batches", s.batches)
            .u64("reserved_bytes", self.admission.reserved_bytes())
            .u64("advice_p99_us", self.advice_latency_us.p99())
            .emit();
    }

    fn log_summary(&self) {
        let s = &self.stats;
        let elapsed = self.started.elapsed().as_secs_f64();
        tlog::info("serve_drain")
            .u64("tenants_opened", s.opens)
            .u64("events", s.events)
            .u64("sheds", s.sheds)
            .u64("rejects", s.rejects)
            .u64("parse_errors", s.parse_errors)
            .u64("quarantined", s.quarantined)
            .f64("elapsed_s", elapsed)
            .f64("events_per_sec", if elapsed > 0.0 { s.events as f64 / elapsed } else { 0.0 })
            .u64("advice_p50_us", self.advice_latency_us.p50())
            .u64("advice_p99_us", self.advice_latency_us.p99())
            .emit();
    }

    /// Render the `pfserve-bench/v1` JSON artifact (tenant throughput and
    /// advice-latency percentiles from the telemetry histogram).
    pub fn bench_json(&self) -> String {
        let s = &self.stats;
        let elapsed = self.started.elapsed().as_secs_f64();
        let per_sec = |n: u64| if elapsed > 0.0 { n as f64 / elapsed } else { 0.0 };
        let h = &self.advice_latency_us;
        format!(
            "{{\"schema\":\"pfserve-bench/v1\",\"tenants\":{},\"events\":{},\"elapsed_s\":{:.3},\
             \"tenants_per_sec\":{:.3},\"events_per_sec\":{:.3},\"sheds\":{},\"rejects\":{},\
             \"parse_errors\":{},\"quarantined\":{},\"advice_latency_us\":{{\"count\":{},\
             \"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}}}",
            s.opens,
            s.events,
            elapsed,
            per_sec(s.opens),
            per_sec(s.events),
            s.sheds,
            s.rejects,
            s.parse_errors,
            s.quarantined,
            h.count(),
            h.p50(),
            h.p90(),
            h.p99(),
            h.max(),
        )
    }

    // -- recovery -----------------------------------------------------------

    /// Recover tenants from the WAL directory before serving.
    ///
    /// Per tenant log, in name order:
    ///
    /// * ends in `C` → the tenant closed cleanly; its artifacts are
    ///   deleted (the close-time snapshot under `--snapshot-dir`, when
    ///   configured, already carries its tree);
    /// * live, within `--recover-cap-events` → **full replay** through a
    ///   fresh tenant: advice file, counters, and future advice are
    ///   bit-identical to the uninterrupted run (a replayed panic
    ///   re-quarantines, faithfully);
    /// * live, over the cap → **degraded** warm start from the freshest
    ///   readable checkpoint generation (event counters restored from
    ///   the log, simulator cache state lost);
    /// * torn tail → truncated, then one of the above;
    /// * corrupt, malformed, or refused by admission → that one tenant
    ///   is quarantined with a typed [`RecoveryError`]; every other
    ///   tenant recovers normally. Recovery never aborts the service.
    pub fn recover(&mut self) -> RecoveryReport {
        let t0 = Instant::now();
        let mut report = RecoveryReport::default();
        let Some(dir) = self.wal.as_ref().map(|w| w.dir().to_path_buf()) else {
            return report;
        };
        let mut logs: Vec<(String, PathBuf)> = match std::fs::read_dir(&dir) {
            Ok(entries) => entries
                .filter_map(|e| {
                    let path = e.ok()?.path();
                    let name = path.file_name()?.to_str()?.strip_suffix(".wal")?.to_string();
                    Some((name, path))
                })
                .collect(),
            Err(e) => {
                tlog::warn("serve_recovery_listing_failed")
                    .str("dir", dir.display().to_string())
                    .str("error", e.to_string())
                    .emit();
                return report;
            }
        };
        logs.sort();
        for (name, path) in logs {
            self.recover_tenant(&name, &path, &mut report);
        }
        report.elapsed_ms = t0.elapsed().as_millis().min(u128::from(u64::MAX)) as u64;
        tlog::info("serve_recovered")
            .u64("replayed", report.replayed)
            .u64("degraded", report.degraded)
            .u64("closed", report.closed)
            .u64("quarantined", report.quarantined)
            .u64("torn_truncated", report.torn_truncated)
            .u64("replayed_events", report.replayed_events)
            .u64("elapsed_ms", report.elapsed_ms)
            .emit();
        self.recovery = Some(report.clone());
        report
    }

    /// Recover one tenant from its log (see [`Service::recover`]).
    fn recover_tenant(&mut self, name: &str, path: &PathBuf, report: &mut RecoveryReport) {
        let scan = match prefetch_wal::scan(path) {
            Ok(scan) => scan,
            Err(e) => {
                return self.quarantine_recovered(name, RecoveryError::Io(e.to_string()), report);
            }
        };
        match &scan.tail {
            Tail::Corrupt { at, reason } => {
                return self.quarantine_recovered(
                    name,
                    RecoveryError::Corrupt { at: *at, reason: reason.clone() },
                    report,
                );
            }
            Tail::Torn { .. } => report.torn_truncated += 1,
            Tail::Clean => {}
        }
        let records = match crate::wal::decode_log(&scan.records) {
            Ok(records) => records,
            Err(e) => return self.quarantine_recovered(name, e, report),
        };
        if matches!(records.last(), Some(WalRecord::Close)) {
            // Closed cleanly; nothing lives here any more.
            if let Some(w) = self.wal.as_mut() {
                w.retire(usize::MAX, name);
            }
            report.closed += 1;
            return;
        }
        let Some(WalRecord::Open { spec, base }) = records.first().cloned() else {
            // decode_log guarantees a leading Open when records exist, so
            // this is an empty log: a crash before the O record became
            // durable. The tenant never observably existed; clean up.
            let _ = std::fs::remove_file(path);
            return;
        };
        if let Err(reason) = self.admission.try_admit(spec.estimated_bytes()) {
            return self.quarantine_recovered(
                name,
                RecoveryError::AdmissionRefused(reason.render(name)),
                report,
            );
        }
        let events = records.iter().filter(|r| matches!(r, WalRecord::Event(_))).count() as u64;
        let cap = self.opts.wal.recover_cap_events;
        let mut state = match TenantState::new(name, spec.clone(), self.opts.advice_dir.as_deref())
        {
            Ok(state) => state,
            Err(e) => {
                self.admission.release(spec.estimated_bytes());
                return self.quarantine_recovered(
                    name,
                    RecoveryError::Io(format!("advice file: {e}")),
                    report,
                );
            }
        };
        state.wal_state = "on";
        if self.opts.trace_ring > 0 {
            state.enable_flight(self.opts.trace_ring);
            if let Some(fr) = state.flight_mut() {
                fr.record_text(
                    "admission",
                    format!("recovered cache={} nodes={}", spec.cache_blocks, spec.node_limit),
                );
            }
        }
        if cap > 0 && events > cap {
            self.recover_degraded(name, &mut state, &records, events, report);
        } else if !self.recover_replayed(name, &mut state, &records, base, report) {
            return; // quarantined during replay; slot already registered
        }
        // Resume the log in place (truncating any torn tail) and
        // register the live slot.
        let resumed = AppendLog::resume(path, scan.valid_len);
        let idx = self.register_recovered(name, state);
        if let Some(w) = self.wal.as_mut() {
            match resumed {
                Ok(log) => {
                    w.logs.insert(idx, crate::wal::TenantLog { log, since_ckpt: 0 });
                }
                Err(e) => {
                    w.degraded_tenants += 1;
                    if let Some(s) = lock_slot(&self.slots[idx]).state.as_mut() {
                        s.wal_state = "degraded";
                    }
                    tlog::warn("serve_wal_degraded")
                        .str("tenant", name.to_string())
                        .str("reason", format!("resume failed: {e}"))
                        .emit();
                }
            }
        }
        // Exact accounting, as after any flush.
        let (old, new) = {
            let mut guard = lock_slot(&self.slots[idx]);
            match guard.state.as_mut() {
                Some(s) => {
                    let resident = s.resident_bytes();
                    let old = s.charged_bytes;
                    s.charged_bytes = resident;
                    (old, resident)
                }
                None => (0, 0),
            }
        };
        if old != new && self.admission.recharge(old, new) {
            self.log_over_budget();
        }
        self.stats.opens += 1;
    }

    /// Full replay: feed every logged record through the real event
    /// path. Returns `false` when a reproduced panic quarantined the
    /// tenant (the slot is registered and quarantined before returning).
    fn recover_replayed(
        &mut self,
        name: &str,
        state: &mut TenantState,
        records: &[WalRecord],
        base: bool,
        report: &mut RecoveryReport,
    ) -> bool {
        if base {
            // The live tenant warm-started; replay must start from the
            // captured base tree or the streams diverge.
            let base_path = self.wal.as_ref().expect("recover requires wal").base_path(name);
            match prefetch_tree::PrefetchTree::load_snapshot(&base_path) {
                Ok(tree) => {
                    state.warm_start(tree);
                }
                Err(e) => {
                    tlog::warn("serve_recovery_base_lost")
                        .str("tenant", name.to_string())
                        .str("error", e.to_string())
                        .emit();
                    // Without the base the replay cannot be bit-identical;
                    // fall back to the degraded path honestly.
                    let events =
                        records.iter().filter(|r| matches!(r, WalRecord::Event(_))).count() as u64;
                    self.recover_degraded(name, state, records, events, report);
                    return true;
                }
            }
        }
        let mut replayed = 0u64;
        for (i, record) in records.iter().enumerate() {
            SUPPRESS_PANIC_OUTPUT.with(|s| s.set(true));
            let result = catch_unwind(AssertUnwindSafe(|| crate::wal::apply_record(state, record)));
            SUPPRESS_PANIC_OUTPUT.with(|s| s.set(false));
            match result {
                Ok(true) => replayed += 1,
                Ok(false) => {}
                Err(payload) => {
                    // The panic reproduces: quarantine exactly like the
                    // live run did.
                    let message = payload_message(payload);
                    state.flush_advice();
                    let (events, skipped, shed) = (state.seq, state.skipped, state.shed);
                    let trace = state.flight().map(|fr| fr.dump_lines()).unwrap_or_default();
                    let idx = self.register_recovered_gone(
                        name,
                        Gone::Quarantined {
                            message: message.clone(),
                            events,
                            skipped,
                            shed,
                            queue_hwm: state.queue_hwm,
                            trace,
                        },
                    );
                    self.quarantine.record_failure(BlockId(idx as u64));
                    self.admission.release(state.spec.estimated_bytes());
                    self.stats.quarantined += 1;
                    report.quarantined += 1;
                    report.replayed_events += replayed;
                    report.errors.push((
                        name.to_string(),
                        format!("panic reproduced at record {i}: {message}"),
                    ));
                    tlog::warn("serve_recovery_requarantined")
                        .str("tenant", name.to_string())
                        .str("err", message)
                        .emit();
                    return false;
                }
            }
        }
        state.recovered = "replayed";
        report.replayed += 1;
        report.replayed_events += replayed;
        true
    }

    /// Degraded restore: the log exceeds the replay cap (or its base
    /// snapshot is gone). Restore the tree from the freshest readable
    /// checkpoint generation and the counters from the log; the
    /// simulator's cache state is lost — documented, bounded, honest.
    fn recover_degraded(
        &mut self,
        name: &str,
        state: &mut TenantState,
        records: &[WalRecord],
        events: u64,
        report: &mut RecoveryReport,
    ) {
        let candidates: Vec<PathBuf> = {
            let w = self.wal.as_ref().expect("recover requires wal");
            let mut c = vec![w.ckpt_path(name), w.ckpt_prev_path(name), w.base_path(name)];
            if let Some(dir) = &self.opts.snapshot_dir {
                c.push(dir.join(format!("{name}.pftree")));
            }
            c
        };
        let mut restored = false;
        for path in candidates {
            if !path.exists() {
                continue;
            }
            match prefetch_tree::PrefetchTree::load_snapshot(&path) {
                Ok(tree) => {
                    restored = state.warm_start(tree);
                    if restored {
                        tlog::info("serve_recovery_degraded_restore")
                            .str("tenant", name.to_string())
                            .str("snapshot", path.display().to_string())
                            .emit();
                        break;
                    }
                }
                Err(_) => continue, // try the previous generation
            }
        }
        if !restored {
            tlog::warn("serve_recovery_degraded_cold").str("tenant", name.to_string()).emit();
        }
        // Counters survive in the log even when the state does not.
        state.seq = events;
        state.skipped = records.iter().filter(|r| matches!(r, WalRecord::Skip)).count() as u64;
        state.shed = records.iter().filter(|r| matches!(r, WalRecord::Shed)).count() as u64;
        state.panic_armed = matches!(records.last(), Some(WalRecord::PanicArm));
        state.recovered = "degraded";
        report.degraded += 1;
    }

    /// Register a recovered live tenant in the registry (fresh service:
    /// names cannot collide).
    fn register_recovered(&mut self, name: &str, state: TenantState) -> usize {
        let i = self.slots.len();
        self.slots.push(Arc::new(Mutex::new(Slot { state: Some(state), gone: None })));
        self.names.push(Arc::from(name));
        self.index.insert(name.to_string(), i);
        i
    }

    /// Register a recovered-but-gone tenant (quarantined at recovery).
    fn register_recovered_gone(&mut self, name: &str, gone: Gone) -> usize {
        let i = self.slots.len();
        self.slots.push(Arc::new(Mutex::new(Slot { state: None, gone: Some(gone) })));
        self.names.push(Arc::from(name));
        self.index.insert(name.to_string(), i);
        i
    }

    /// Quarantine a tenant that could not be recovered: the slot exists
    /// (so requests get typed `REJECT ... quarantined` answers), the
    /// damaged log stays on disk for postmortem, and the failure is a
    /// typed entry in the report. Never aborts recovery.
    fn quarantine_recovered(
        &mut self,
        name: &str,
        error: RecoveryError,
        report: &mut RecoveryReport,
    ) {
        let message = error.to_string();
        let idx = self.register_recovered_gone(
            name,
            Gone::Quarantined {
                message: message.clone(),
                events: 0,
                skipped: 0,
                shed: 0,
                queue_hwm: 0,
                trace: Vec::new(),
            },
        );
        self.quarantine.record_failure(BlockId(idx as u64));
        self.stats.quarantined += 1;
        report.quarantined += 1;
        report.errors.push((name.to_string(), message.clone()));
        tlog::warn("serve_recovery_quarantined")
            .str("tenant", name.to_string())
            .str("err", message)
            .emit();
    }

    /// The report of the recovery pass, when `recover` ran.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Arm injected durability faults on `tenant`'s live WAL (fault-drill
    /// support: chaos tests hand in a [`prefetch_wal::WriteFaults`]
    /// schedule, e.g. `prefetch_disk::DurabilityInjector`). Returns false
    /// when the tenant has no live log to arm.
    pub fn inject_wal_faults(
        &mut self,
        tenant: &str,
        faults: Box<dyn prefetch_wal::WriteFaults>,
    ) -> bool {
        let Some(&idx) = self.index.get(tenant) else { return false };
        let Some(w) = self.wal.as_mut() else { return false };
        match w.logs.get_mut(&idx) {
            Some(t) => {
                t.log.set_faults(Some(faults));
                true
            }
            None => false,
        }
    }

    /// Render the `pfserve-recovery-bench/v1` JSON artifact: WAL volume
    /// and fsync counts (for fsync-policy overhead comparisons) plus the
    /// recovery outcome and replay throughput, when a recovery ran.
    pub fn recovery_bench_json(&self) -> String {
        let elapsed = self.started.elapsed().as_secs_f64();
        let s = &self.stats;
        let wal = match &self.wal {
            Some(w) => format!(
                "{{\"enabled\":true,\"appends\":{},\"fsyncs\":{},\"sync_errors\":{},\
                 \"degraded_tenants\":{},\"checkpoints\":{}}}",
                w.appends, w.fsyncs, w.sync_errors, w.degraded_tenants, w.checkpoints
            ),
            None => "{\"enabled\":false}".to_string(),
        };
        let recovery = match &self.recovery {
            Some(r) => {
                let secs = r.elapsed_ms as f64 / 1000.0;
                format!(
                    "{{\"replayed_tenants\":{},\"degraded_tenants\":{},\"closed_tenants\":{},\
                     \"quarantined_tenants\":{},\"torn_truncated\":{},\"replayed_events\":{},\
                     \"recovery_ms\":{},\"replay_events_per_sec\":{:.3}}}",
                    r.replayed,
                    r.degraded,
                    r.closed,
                    r.quarantined,
                    r.torn_truncated,
                    r.replayed_events,
                    r.elapsed_ms,
                    if secs > 0.0 { r.replayed_events as f64 / secs } else { 0.0 },
                )
            }
            None => "null".to_string(),
        };
        format!(
            "{{\"schema\":\"pfserve-recovery-bench/v1\",\"fsync_policy\":\"{}\",\
             \"events\":{},\"elapsed_s\":{:.3},\"events_per_sec\":{:.3},\"wal\":{wal},\
             \"recovery\":{recovery}}}",
            self.opts.wal.fsync.name(),
            s.events,
            elapsed,
            if elapsed > 0.0 { s.events as f64 / elapsed } else { 0.0 },
        )
    }
}

thread_local! {
    /// True while this worker runs a tenant flush under `catch_unwind`:
    /// the panic hook stays silent (the panic becomes a typed `PANIC`
    /// response and a quarantine, so the default hook's backtrace spam
    /// would only obscure the service's real output).
    static SUPPRESS_PANIC_OUTPUT: Cell<bool> = const { Cell::new(false) };
}

fn install_quiet_panic_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_OUTPUT.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

/// Render a panic payload the way the sweep harness does.
fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Fold a tenant's pending metric deltas into its registry cells. Called
/// inside a `MetricsRegistry::update` at the drain points: every
/// snapshot/exposition (via `refresh_gauges`) and the close/quarantine
/// teardowns — the last flush's deltas survive the state drop.
fn publish_pending(m: &mut MetricSet, pending: &PendingMetrics) {
    if pending.is_empty() {
        return;
    }
    m.add("events", pending.events);
    m.add("demand_hits", pending.demand_hits);
    m.add("prefetch_hits", pending.prefetch_hits);
    m.add("misses", pending.misses);
    m.add("prefetches", pending.prefetches);
    m.record_many("stall_us", &pending.stall_us);
}

/// Apply one tenant's queued events in order, under `catch_unwind`.
///
/// Responses produced before a panic are preserved (pushed through a
/// mutex the unwinding cannot tear), so a tenant that dies mid-batch
/// still delivers the advice it computed. Registry-bound measurements
/// fold into the tenant's own [`PendingMetrics`] under the slot lock the
/// flush already holds — the shared registry is never touched here; the
/// snapshot/exposition paths drain it later. A panic loses nothing: the
/// folds already applied stay in the state, and the quarantine drain
/// publishes them. Runs on a pool worker; touches only the one slot it
/// was given.
fn flush_tenant(slot: &Mutex<Slot>, events: &[(ConnId, u64)], metrics_on: bool) -> TenantFlush {
    // One scratch mutex instead of one per collection: the per-event
    // publish is a single uncontended lock, and unwinding cannot tear
    // what was already pushed. Metric deltas accumulate here too — the
    // scratch is flush-local and cache-hot, where the per-tenant
    // `PendingMetrics` is one of hundreds and almost always cold.
    struct Scratch {
        responses: Vec<(ConnId, String)>,
        latencies: Vec<u64>,
        counts: BatchCounts,
        stall_us: Vec<u64>,
    }
    let scratch: Mutex<Scratch> = Mutex::new(Scratch {
        responses: Vec::with_capacity(events.len()),
        latencies: Vec::with_capacity(events.len()),
        counts: BatchCounts::default(),
        stall_us: if metrics_on { Vec::with_capacity(events.len()) } else { Vec::new() },
    });
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(true));
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut guard = lock_slot(slot);
        let Some(state) = guard.state.as_mut() else {
            return;
        };
        // Batch composition is listener-formed, so the high-water mark
        // is deterministic at any worker count.
        state.queue_hwm = state.queue_hwm.max(events.len() as u64);
        if let Some(fr) = state.flight_mut() {
            fr.record_kv("dispatch", "events", events.len() as u64);
        }
        for (conn, block) in events {
            let t0 = Instant::now();
            let outcome = state.process_event_full(*block);
            let us = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            let mut s = scratch.lock().unwrap_or_else(|e| e.into_inner());
            if metrics_on {
                s.counts.fold(&outcome);
                // Whole microseconds of *virtual* stall: no wall clock,
                // so merged histograms are bit-identical across runs.
                s.stall_us.push((outcome.stall_ms * 1000.0).round() as u64);
            }
            s.latencies.push(us);
            s.responses.push((*conn, outcome.line));
        }
        // Reaching here means every event was served. Bank the metric
        // deltas and record the "response" stage on the lock this flush
        // already holds. A panicking flush records no response — the
        // quarantine dump is the record.
        if metrics_on {
            let (counts, stalls) = {
                let mut s = scratch.lock().unwrap_or_else(|e| e.into_inner());
                (std::mem::take(&mut s.counts), std::mem::take(&mut s.stall_us))
            };
            state.pending_metrics.fold_batch(&counts, &stalls);
        }
        if let Some(fr) = state.flight_mut() {
            fr.record_kv("response", "n", events.len() as u64);
        }
    }));
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(false));
    let Scratch { responses, latencies, counts, stall_us } =
        scratch.into_inner().unwrap_or_else(|e| e.into_inner());
    if metrics_on && counts.events > 0 {
        // Only a panic leaves deltas here: the tenant still banks the
        // events it served before dying (its state is only taken later,
        // by the quarantine in `absorb_flush`).
        let mut guard = lock_slot(slot);
        if let Some(state) = guard.state.as_mut() {
            state.pending_metrics.fold_batch(&counts, &stall_us);
        }
    }
    let panicked = match result {
        Ok(()) => None,
        Err(payload) => Some((responses.len(), payload_message(payload))),
    };
    TenantFlush { responses, latencies_us: latencies, panicked }
}
