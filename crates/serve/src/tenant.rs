//! Per-tenant advisor state: one [`Simulator`] (prefetch tree +
//! cost-benefit cache model) per tenant, plus the service-side counters.
//!
//! A tenant is configured at `OPEN` time by [`TenantSpec`]: cache size,
//! policy, node budget (the tree crate's `OverflowPolicy` enforced through
//! `EngineConfig`), and optional per-tenant fault injection. Every access
//! event steps the tenant's simulator one period and captures the
//! resulting prefetch advice; the tenant's whole evolution depends only on
//! its own event sequence, which is what makes per-tenant advice streams
//! byte-identical at any worker count.

use crate::protocol::RejectReason;
use prefetch_core::policy::RefKind;
use prefetch_core::CalibrationTracker;
use prefetch_sim::{PolicySpec, SimConfig, SimEvent, SimMetrics, SimObserver, Simulator};
use prefetch_telemetry::FlightRecorder;
use prefetch_trace::{BlockId, TraceRecord};
use prefetch_tree::PrefetchTree;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Arc;

/// Server-side defaults applied when an `OPEN` omits an option.
#[derive(Clone, Copy, Debug)]
pub struct TenantDefaults {
    /// Cache blocks per tenant.
    pub cache_blocks: usize,
    /// Prefetch-tree node budget per tenant.
    pub node_limit: usize,
    /// Freeze (true) or evict (false) at the node budget.
    pub freeze: bool,
}

impl Default for TenantDefaults {
    fn default() -> Self {
        TenantDefaults { cache_blocks: 64, node_limit: 4096, freeze: false }
    }
}

/// A tenant's parsed `OPEN` configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantSpec {
    /// Cache blocks.
    pub cache_blocks: usize,
    /// Policy to advise with.
    pub policy: PolicySpec,
    /// Prefetch-tree node budget.
    pub node_limit: usize,
    /// Freeze instead of evicting at the node budget.
    pub freeze: bool,
    /// Finite disk array size for fault pricing, if any.
    pub disks: Option<usize>,
    /// Per-tenant deterministic fault rate (requires `disks`).
    pub fault_rate: f64,
    /// Seed of the tenant's fault plan.
    pub fault_seed: u64,
}

/// Parse a single-policy name (the subset of pfsim's `--policy` grammar
/// that makes sense per tenant; the oracle needs trace lookahead a live
/// event stream cannot provide, so it is rejected).
fn parse_policy(s: &str) -> Result<PolicySpec, String> {
    Ok(match s {
        "no-prefetch" => PolicySpec::NoPrefetch,
        "next-limit" => PolicySpec::NextLimit,
        "tree" => PolicySpec::Tree,
        "tree-next-limit" => PolicySpec::TreeNextLimit,
        "tree-lvc" => PolicySpec::TreeLvc,
        "tree-reanchor" => PolicySpec::TreeReanchor,
        other => {
            if let Some(t) = other.strip_prefix("tree-threshold=") {
                PolicySpec::TreeThreshold(t.parse().map_err(|_| format!("bad threshold {t:?}"))?)
            } else if let Some(k) = other.strip_prefix("tree-children=") {
                PolicySpec::TreeChildren(
                    k.parse().map_err(|_| format!("bad children count {k:?}"))?,
                )
            } else {
                return Err(format!(
                    "unknown policy {other:?} (try: no-prefetch, next-limit, tree, \
                     tree-next-limit, tree-lvc, tree-reanchor, tree-threshold=<p>, \
                     tree-children=<k>)"
                ));
            }
        }
    })
}

impl TenantSpec {
    /// Build a spec from `OPEN` options over the server defaults. Every
    /// malformed option is a typed [`RejectReason::BadConfig`] — admission
    /// never panics on hostile input.
    pub fn from_opts(
        opts: &[(String, String)],
        defaults: &TenantDefaults,
    ) -> Result<Self, RejectReason> {
        let mut spec = TenantSpec {
            cache_blocks: defaults.cache_blocks,
            policy: PolicySpec::TreeNextLimit,
            node_limit: defaults.node_limit,
            freeze: defaults.freeze,
            disks: None,
            fault_rate: 0.0,
            fault_seed: 0,
        };
        let bad = |msg: String| Err(RejectReason::BadConfig(msg));
        for (k, v) in opts {
            match k.as_str() {
                "cache" => match v.parse::<usize>() {
                    Ok(n) if n > 0 => spec.cache_blocks = n,
                    _ => return bad(format!("cache={v} must be a positive integer")),
                },
                "policy" => match parse_policy(v) {
                    Ok(p) => spec.policy = p,
                    Err(e) => return bad(e),
                },
                "nodes" => match v.parse::<usize>() {
                    Ok(n) if n > 0 => spec.node_limit = n,
                    _ => return bad(format!("nodes={v} must be a positive integer")),
                },
                "overflow" => match v.as_str() {
                    "evict" => spec.freeze = false,
                    "freeze" => spec.freeze = true,
                    _ => return bad(format!("overflow={v} must be evict or freeze")),
                },
                "disks" => match v.parse::<usize>() {
                    Ok(n) if n > 0 => spec.disks = Some(n),
                    _ => return bad(format!("disks={v} must be a positive integer")),
                },
                "fault_rate" => match v.parse::<f64>() {
                    Ok(r) if r.is_finite() && (0.0..=1.0).contains(&r) => spec.fault_rate = r,
                    _ => return bad(format!("fault_rate={v} must be in [0,1]")),
                },
                "fault_seed" => match v.parse::<u64>() {
                    Ok(s) => spec.fault_seed = s,
                    _ => return bad(format!("fault_seed={v} must be a u64")),
                },
                other => return bad(format!("unknown option {other:?}")),
            }
        }
        // The full SimConfig validation catches cross-field problems
        // (faults without disks, degenerate retry schedules, ...).
        let config = spec.to_sim_config();
        if let Err(e) = config.validate() {
            return bad(e.to_string());
        }
        Ok(spec)
    }

    /// The simulator configuration this spec describes.
    pub fn to_sim_config(&self) -> SimConfig {
        let mut cfg = SimConfig::new(self.cache_blocks, self.policy);
        cfg.engine.node_limit = self.node_limit;
        cfg.engine.freeze_at_node_limit = self.freeze;
        if let Some(d) = self.disks {
            cfg = cfg.with_disks(d);
        }
        if self.fault_rate > 0.0 {
            cfg = cfg.with_fault_rate(self.fault_seed, self.fault_rate);
        }
        cfg
    }

    /// Rough resident bytes this tenant may reach, charged against the
    /// server's aggregate memory budget at admission time. Per tree node:
    /// 40 paper bytes plus arena/edge-map/LRU overhead (~96 B total); per
    /// cache block: LRU + prefetch metadata (~64 B); plus a fixed floor
    /// for the simulator itself. This pessimistic estimate only gates the
    /// `OPEN`; afterwards the reservation is re-priced to the tenant's
    /// measured [`TenantState::resident_bytes`] at every flush.
    pub fn estimated_bytes(&self) -> u64 {
        const NODE_BYTES: u64 = 96;
        let nodes = self.node_limit.min(1 << 32) as u64;
        FIXED_BYTES + nodes * NODE_BYTES + self.cache_blocks as u64 * CACHE_BLOCK_BYTES
    }
}

/// Per-cache-block overhead (LRU + prefetch metadata) used by both the
/// admission estimate and the exact re-pricing.
const CACHE_BLOCK_BYTES: u64 = 64;
/// Fixed floor for the simulator itself.
const FIXED_BYTES: u64 = 8 * 1024;

/// Captures one event's advice from the simulator event stream: how the
/// reference was served, the stall it absorbed, and the blocks the policy
/// chose to prefetch this period.
#[derive(Default)]
struct AdviceCapture {
    kind: Option<RefKind>,
    stall_ms: f64,
    prefetched: Vec<BlockId>,
}

impl SimObserver for AdviceCapture {
    fn on_event(&mut self, event: &SimEvent<'_>) {
        match event {
            SimEvent::Reference { kind, stall_ms, .. } => {
                self.kind = Some(*kind);
                self.stall_ms = *stall_ms;
            }
            SimEvent::Period { activity, .. } => {
                self.prefetched.extend_from_slice(&activity.prefetched_blocks);
            }
            _ => {}
        }
    }
}

/// Registry-bound metric deltas accumulated on the flush path (under
/// the slot lock the flush already holds) and drained into the shared
/// [`prefetch_telemetry::MetricsRegistry`] only at snapshot/exposition
/// boundaries — so the per-event hot path never touches a shared lock
/// at all. Only deterministic quantities live here (per-kind counts and
/// *virtual* stall); wall-clock advice latency stays in the service-side
/// histogram. Drains are commutative (counter sums, bucket-wise
/// histogram merge), so published totals at a snapshot boundary are
/// identical at any `--threads N`.
#[derive(Default)]
pub struct PendingMetrics {
    /// Events processed since the last drain.
    pub events: u64,
    /// References served from cache (demand-fetched blocks).
    pub demand_hits: u64,
    /// References served by a completed prefetch.
    pub prefetch_hits: u64,
    /// References that missed and stalled on disk.
    pub misses: u64,
    /// Prefetches issued.
    pub prefetches: u64,
    /// Virtual stall per reference, whole microseconds. Kept as raw
    /// samples — appends are sequential and cheap on the flush path —
    /// and bucketed into the registry histogram only at drain time.
    pub stall_us: Vec<u64>,
}

impl PendingMetrics {
    /// Fold one flush's batch-local accumulation in. Batched so the
    /// per-event path only touches hot flush-local scratch; the
    /// per-tenant (cache-cold at 100s of tenants) structures are hit
    /// once per flush.
    pub fn fold_batch(&mut self, counts: &BatchCounts, stall_us: &[u64]) {
        self.events += counts.events;
        self.demand_hits += counts.demand_hits;
        self.prefetch_hits += counts.prefetch_hits;
        self.misses += counts.misses;
        self.prefetches += counts.prefetches;
        self.stall_us.extend_from_slice(stall_us);
    }

    /// Whether any event was folded since the last drain.
    pub fn is_empty(&self) -> bool {
        self.events == 0
    }
}

/// Flush-local event counters (see [`PendingMetrics::fold_batch`]).
#[derive(Clone, Copy, Default)]
pub struct BatchCounts {
    /// Events processed this flush.
    pub events: u64,
    /// References served from cache.
    pub demand_hits: u64,
    /// References served by a completed prefetch.
    pub prefetch_hits: u64,
    /// References that missed and stalled on disk.
    pub misses: u64,
    /// Prefetches issued.
    pub prefetches: u64,
}

impl BatchCounts {
    /// Fold one processed event's outcome in.
    pub fn fold(&mut self, outcome: &EventOutcome) {
        self.events += 1;
        match outcome.kind {
            RefKind::DemandHit => self.demand_hits += 1,
            RefKind::PrefetchHit => self.prefetch_hits += 1,
            RefKind::Miss => self.misses += 1,
        }
        self.prefetches += outcome.prefetched as u64;
    }
}

/// Live state of one admitted tenant.
pub struct TenantState {
    /// Tenant name (shared with the registry index).
    pub name: Arc<str>,
    /// The spec it was admitted under.
    pub spec: TenantSpec,
    sim: Simulator,
    metrics: SimMetrics,
    /// Events processed (the advice sequence number).
    pub seq: u64,
    /// Malformed lines charged to this tenant.
    pub skipped: u64,
    /// Events dropped by backpressure.
    pub shed: u64,
    /// Chaos hook: the next event processing panics.
    pub panic_armed: bool,
    /// Bytes currently reserved against the server's memory budget for
    /// this tenant: the admission estimate at `OPEN`, then the measured
    /// [`TenantState::resident_bytes`] after each flush re-prices it.
    pub charged_bytes: u64,
    /// How this tenant's state came to be: `"none"` (opened live),
    /// `"replayed"` (full WAL replay, bit-identical), or `"degraded"`
    /// (checkpoint warm start after a capped replay).
    pub recovered: &'static str,
    /// Durability health: `"off"` (no WAL configured), `"on"` (events
    /// are logged), or `"degraded"` (the WAL failed mid-run; the tenant
    /// keeps serving in-memory only).
    pub wal_state: &'static str,
    /// High-water mark of this tenant's per-batch input queue depth.
    /// Batch composition is formed by the listener independent of the
    /// worker count, so this is deterministic at any `--threads N`.
    pub queue_hwm: u64,
    /// Metric deltas awaiting the next registry drain (see
    /// [`PendingMetrics`]); untouched when metrics are off.
    pub pending_metrics: PendingMetrics,
    /// Flight recorder, when `--trace-ring` enabled tracing at admission.
    flight: Option<FlightRecorder>,
    advice_file: Option<BufWriter<File>>,
}

/// What one processed event produced: the `ADV` response line plus the
/// measurements observability consumers record (metrics registry,
/// flight recorder).
pub struct EventOutcome {
    /// The rendered `ADV` response line.
    pub line: String,
    /// How the reference was served.
    pub kind: RefKind,
    /// Virtual stall charged to the reference (ms).
    pub stall_ms: f64,
    /// Blocks the policy chose to prefetch this period.
    pub prefetched: usize,
}

impl TenantState {
    /// Admit a tenant. When `advice_dir` is set, the tenant's advice
    /// stream is also appended to `<dir>/<name>.advice`.
    pub fn new(name: &str, spec: TenantSpec, advice_dir: Option<&Path>) -> std::io::Result<Self> {
        let advice_file = match advice_dir {
            Some(dir) => {
                let file = File::create(dir.join(format!("{name}.advice")))?;
                Some(BufWriter::new(file))
            }
            None => None,
        };
        let config = spec.to_sim_config();
        let charged_bytes = spec.estimated_bytes();
        Ok(TenantState {
            name: Arc::from(name),
            sim: Simulator::new(&config),
            spec,
            metrics: SimMetrics::default(),
            seq: 0,
            skipped: 0,
            shed: 0,
            panic_armed: false,
            charged_bytes,
            recovered: "none",
            wal_state: "off",
            queue_hwm: 0,
            pending_metrics: PendingMetrics::default(),
            flight: None,
            advice_file,
        })
    }

    /// Turn on flight recording with a ring of `cap` events.
    pub fn enable_flight(&mut self, cap: usize) {
        self.flight = Some(FlightRecorder::new(cap));
    }

    /// The flight recorder, when tracing is enabled.
    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.flight.as_ref()
    }

    /// Mutable flight-recorder access (service stages record through it).
    pub fn flight_mut(&mut self) -> Option<&mut FlightRecorder> {
        self.flight.as_mut()
    }

    /// The tenant's predicted-vs-realized calibration accumulators, when
    /// its policy tracks them (cost-benefit engine policies do).
    pub fn calibration(&self) -> Option<&CalibrationTracker> {
        self.sim.calibration()
    }

    /// The tenant's prefetch tree, when its policy keeps one.
    pub fn tree(&self) -> Option<&PrefetchTree> {
        self.sim.tree()
    }

    /// Warm-start the tenant's policy from a restored snapshot (called at
    /// `OPEN` before any event). Returns `false` when the policy keeps no
    /// tree.
    pub fn warm_start(&mut self, tree: PrefetchTree) -> bool {
        self.sim.install_tree(tree)
    }

    /// Exact resident bytes of this tenant right now: the tree's measured
    /// arena footprint (`PrefetchTree::bytes_in_use`, zero for treeless
    /// policies) plus the cache and simulator overheads of the admission
    /// model. Replaces the `OPEN`-time estimate once events flow.
    pub fn resident_bytes(&self) -> u64 {
        let tree_bytes = self.sim.tree().map_or(0, |t| t.bytes_in_use() as u64);
        FIXED_BYTES + tree_bytes + self.spec.cache_blocks as u64 * CACHE_BLOCK_BYTES
    }

    /// Process one access event and return the `ADV` response line.
    ///
    /// # Panics
    /// Panics when the chaos hook armed by a `PANIC` request fires, or if
    /// the underlying policy has a bug — the service catches either,
    /// quarantines the tenant, and keeps every other tenant running.
    pub fn process_event(&mut self, block: u64) -> String {
        self.process_event_full(block).line
    }

    /// [`TenantState::process_event`] returning the full [`EventOutcome`]
    /// (how the reference was served, its stall, and the prefetch count)
    /// for metrics recording; also records the `decision` flight stage.
    ///
    /// # Panics
    /// Same contract as [`TenantState::process_event`].
    pub fn process_event_full(&mut self, block: u64) -> EventOutcome {
        if self.panic_armed {
            panic!("injected tenant panic (chaos hook)");
        }
        let mut capture = AdviceCapture::default();
        self.sim.step(TraceRecord::read(block), None, &mut (&mut self.metrics, &mut capture));
        let seq = self.seq;
        self.seq += 1;
        let kind = capture.kind.unwrap_or(RefKind::Miss);
        let kind_ch = match kind {
            RefKind::DemandHit => 'h',
            RefKind::PrefetchHit => 'p',
            RefKind::Miss => 'm',
        };
        let mut line =
            format!("ADV {} {} {} stall={} pf=", self.name, seq, kind_ch, capture.stall_ms);
        if capture.prefetched.is_empty() {
            line.push('-');
        } else {
            for (i, b) in capture.prefetched.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push_str(&b.0.to_string());
            }
        }
        if let Some(f) = &mut self.advice_file {
            let _ = writeln!(f, "{line}");
        }
        if let Some(fr) = self.flight.as_mut() {
            // Per-event hot path: the decision is stored in binary form
            // (virtual stall as whole microseconds) and only rendered if
            // a dump is requested — a record is a few word writes.
            let stall_us = (capture.stall_ms * 1000.0).round() as u64;
            fr.record_decision(seq, kind_ch, stall_us, capture.prefetched.len() as u64);
        }
        EventOutcome {
            line,
            kind,
            stall_ms: capture.stall_ms,
            prefetched: capture.prefetched.len(),
        }
    }

    /// Render the live `STATS` response line. The durability field is
    /// appended last so consumers pinned to the counter prefix keep
    /// parsing. The service appends its own observability fields
    /// (`queue_hwm=`, `rejects=`) to the *response* only — the advice
    /// file keeps this stable batch-composition-independent form.
    pub fn stats_line(&self) -> String {
        format!(
            "STATS {} events={} skipped={} shed={} demand_hits={} prefetch_hits={} misses={} \
             prefetches={} prefetch_faults={} quarantined_blocks={} stall_ms={} elapsed_ms={} \
             wal={}",
            self.name,
            self.seq,
            self.skipped,
            self.shed,
            self.metrics.demand_hits,
            self.metrics.prefetch_hits,
            self.metrics.misses,
            self.metrics.prefetches_issued,
            self.metrics.prefetch_faults,
            self.metrics.blocks_quarantined,
            self.metrics.stall_ms,
            self.sim.clock().now(),
            self.wal_state,
        )
    }

    /// Render the end-of-life `FINAL` report line, appending it to the
    /// advice file when one is open (so per-tenant files are complete,
    /// self-contained records). The service's observability fields
    /// (`queue_hwm=`, `rejects=`) go on the response only: the advice
    /// file stays bit-identical across batch compositions, which the
    /// recovery replay contract depends on.
    pub fn final_line(&mut self) -> String {
        let line = format!(
            "FINAL {} events={} skipped={} shed={} demand_hits={} prefetch_hits={} misses={} \
             prefetches={} prefetch_faults={} stall_ms={} elapsed_ms={} quarantined=false \
             recovered={} wal={}",
            self.name,
            self.seq,
            self.skipped,
            self.shed,
            self.metrics.demand_hits,
            self.metrics.prefetch_hits,
            self.metrics.misses,
            self.metrics.prefetches_issued,
            self.metrics.prefetch_faults,
            self.metrics.stall_ms,
            self.sim.clock().now(),
            self.recovered,
            self.wal_state,
        );
        if let Some(f) = &mut self.advice_file {
            let _ = writeln!(f, "{line}");
            let _ = f.flush();
        }
        line
    }

    /// Flush the advice file (drain path).
    pub fn flush_advice(&mut self) {
        if let Some(f) = &mut self.advice_file {
            let _ = f.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn defaults() -> TenantDefaults {
        TenantDefaults::default()
    }

    fn opts(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect()
    }

    #[test]
    fn spec_applies_defaults_and_overrides() {
        let spec = TenantSpec::from_opts(&[], &defaults()).unwrap();
        assert_eq!(spec.cache_blocks, 64);
        assert_eq!(spec.node_limit, 4096);
        assert!(!spec.freeze);

        let spec = TenantSpec::from_opts(
            &opts(&[
                ("cache", "128"),
                ("policy", "tree"),
                ("nodes", "512"),
                ("overflow", "freeze"),
                ("disks", "2"),
                ("fault_rate", "0.1"),
                ("fault_seed", "9"),
            ]),
            &defaults(),
        )
        .unwrap();
        assert_eq!(spec.cache_blocks, 128);
        assert_eq!(spec.policy, PolicySpec::Tree);
        assert_eq!(spec.node_limit, 512);
        assert!(spec.freeze);
        assert_eq!(spec.disks, Some(2));
        let cfg = spec.to_sim_config();
        cfg.validate().unwrap();
        assert!(cfg.engine.freeze_at_node_limit);
        assert_eq!(cfg.engine.node_limit, 512);
    }

    #[test]
    fn bad_options_are_typed_rejections() {
        for (k, v) in [
            ("cache", "0"),
            ("cache", "x"),
            ("policy", "perfect-selector"),
            ("policy", "nonsense"),
            ("nodes", "0"),
            ("overflow", "melt"),
            ("disks", "0"),
            ("fault_rate", "1.5"),
            ("fault_rate", "NaN"),
            ("fault_seed", "-1"),
            ("frobnicate", "1"),
        ] {
            let err = TenantSpec::from_opts(&opts(&[(k, v)]), &defaults())
                .expect_err(&format!("{k}={v} must be rejected"));
            assert!(matches!(err, RejectReason::BadConfig(_)), "{k}={v}");
        }
        // Cross-field validation: faults need a disk array to inject into.
        let err = TenantSpec::from_opts(&opts(&[("fault_rate", "0.2")]), &defaults()).unwrap_err();
        assert!(matches!(err, RejectReason::BadConfig(_)));
    }

    #[test]
    fn events_produce_deterministic_advice() {
        let spec = TenantSpec::from_opts(&opts(&[("cache", "32")]), &defaults()).unwrap();
        let mut a = TenantState::new("a", spec.clone(), None).unwrap();
        let mut b = TenantState::new("b", spec, None).unwrap();
        let blocks = [1u64, 2, 3, 1, 2, 3, 1, 2, 3, 4];
        for &blk in &blocks {
            let la = a.process_event(blk);
            let lb = b.process_event(blk);
            assert_eq!(la.strip_prefix("ADV a"), lb.strip_prefix("ADV b"));
        }
        assert_eq!(a.seq, blocks.len() as u64);
        // A loop over more blocks than the cache holds forces evictions,
        // so once the tree has learned the cycle the policy must start
        // advising prefetches for the predicted successors.
        let spec = TenantSpec::from_opts(&opts(&[("cache", "16")]), &defaults()).unwrap();
        let mut c = TenantState::new("c", spec, None).unwrap();
        let mut saw_prefetch = false;
        for i in 0..400u64 {
            let line = c.process_event(i % 64);
            if !line.ends_with("pf=-") {
                saw_prefetch = true;
            }
        }
        assert!(saw_prefetch, "tree policy should advise prefetches on an evicting loop");
        assert!(a.stats_line().starts_with("STATS a events=10"));
        assert!(a.final_line().contains("quarantined=false"));
    }

    #[test]
    fn memory_estimate_scales_with_budgets() {
        let small = TenantSpec::from_opts(&opts(&[("nodes", "64")]), &defaults()).unwrap();
        let large = TenantSpec::from_opts(&opts(&[("nodes", "65536")]), &defaults()).unwrap();
        assert!(small.estimated_bytes() < large.estimated_bytes());
    }
}
