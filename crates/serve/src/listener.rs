//! Front ends feeding request lines into a [`Service`].
//!
//! Two listeners share one service core:
//!
//! * **stdin** — reads request lines from standard input in batches and
//!   writes responses to standard output; `SHUTDOWN` or EOF drains.
//!   This is the mode the load generator and the CI chaos job use.
//! * **unix socket** — accepts any number of client connections on a
//!   `SOCK_STREAM` unix socket; each connection gets a reader thread
//!   that tags lines with its [`ConnId`] so responses route back to the
//!   right client. The accept/dispatch loop is single-threaded; the
//!   parallelism lives in the service's batch flush.
//!
//! Listener failures are their own fault domain: a client disconnecting
//! mid-request, a write to a closed socket, or a poisoned writer-registry
//! lock never take down the service — the connection is dropped and the
//! remaining clients keep streaming.

use crate::service::{ConnId, Service};
use std::io::{BufRead, BufReader, Write};

/// How often the service emits a live `serve_stats` telemetry record.
const STATS_EVERY_BATCHES: u64 = 64;

/// Drive the service from stdin, writing responses to stdout. Returns
/// when the input ends or a `SHUTDOWN` request drains the service.
pub fn run_stdin(service: &mut Service, batch: usize) -> std::io::Result<()> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let mut lines: Vec<(ConnId, String)> = Vec::with_capacity(batch);
    for line in stdin.lock().lines() {
        lines.push((0, line?));
        if lines.len() >= batch {
            pump(service, &mut lines, &mut out)?;
            if service.shutdown_requested() {
                break;
            }
        }
    }
    if !service.shutdown_requested() && !lines.is_empty() {
        pump(service, &mut lines, &mut out)?;
    }
    for line in service.drain() {
        writeln!(out, "{line}")?;
    }
    out.flush()?;
    prefetch_telemetry::log::flush();
    Ok(())
}

fn pump(
    service: &mut Service,
    lines: &mut Vec<(ConnId, String)>,
    out: &mut impl Write,
) -> std::io::Result<()> {
    let responses = service.process_batch(lines);
    lines.clear();
    for (_, line) in responses {
        writeln!(out, "{line}")?;
    }
    out.flush()?;
    if service.stats.batches.is_multiple_of(STATS_EVERY_BATCHES) {
        service.log_live_stats();
    }
    Ok(())
}

#[cfg(unix)]
pub use unix::run_unix;

#[cfg(unix)]
mod unix {
    use super::*;
    use std::collections::HashMap;
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::path::Path;
    use std::sync::mpsc::{self, RecvTimeoutError};
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    /// What a reader thread reports to the dispatch loop.
    enum Inbound {
        Line(ConnId, String),
        Gone(ConnId),
    }

    /// Serve on a unix socket at `path` until a `SHUTDOWN` request.
    ///
    /// One reader thread per connection feeds a single dispatch loop
    /// that batches up to `batch` lines (or whatever arrived within the
    /// batching window) into each `process_batch` call.
    pub fn run_unix(service: &mut Service, path: &Path, batch: usize) -> std::io::Result<()> {
        // A stale socket file from a killed process must not block
        // restart — that is the crash-recovery path the chaos job tests.
        match std::fs::remove_file(path) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let (tx, rx) = mpsc::sync_channel::<Inbound>(batch.max(1) * 4);
        let writers: Arc<Mutex<HashMap<ConnId, UnixStream>>> = Arc::new(Mutex::new(HashMap::new()));
        let mut next_conn: ConnId = 1;
        let mut lines: Vec<(ConnId, String)> = Vec::with_capacity(batch);

        loop {
            // Accept whatever is waiting (non-blocking).
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let conn = next_conn;
                        next_conn += 1;
                        let reader = stream.try_clone()?;
                        lock_writers(&writers).insert(conn, stream);
                        let tx = tx.clone();
                        std::thread::spawn(move || {
                            let buf = BufReader::new(reader);
                            for line in buf.lines() {
                                match line {
                                    Ok(line) => {
                                        if tx.send(Inbound::Line(conn, line)).is_err() {
                                            return;
                                        }
                                    }
                                    Err(_) => break,
                                }
                            }
                            let _ = tx.send(Inbound::Gone(conn));
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) => return Err(e),
                }
            }

            // Gather a batch (bounded wait so accepts stay responsive).
            let deadline = Duration::from_millis(20);
            loop {
                match rx.recv_timeout(deadline) {
                    Ok(Inbound::Line(conn, line)) => {
                        lines.push((conn, line));
                        if lines.len() >= batch {
                            break;
                        }
                    }
                    Ok(Inbound::Gone(conn)) => {
                        lock_writers(&writers).remove(&conn);
                    }
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }

            if !lines.is_empty() {
                let responses = service.process_batch(&lines);
                lines.clear();
                route(&writers, responses);
                if service.stats.batches.is_multiple_of(STATS_EVERY_BATCHES) {
                    service.log_live_stats();
                }
            }
            if service.shutdown_requested() {
                break;
            }
        }

        // Graceful drain: the final reports go to every still-connected
        // client (each gets the complete picture).
        let finals = service.drain();
        let mut writers = lock_writers(&writers);
        for (_, stream) in writers.iter_mut() {
            let mut w = std::io::BufWriter::new(stream);
            for line in &finals {
                if writeln!(w, "{line}").is_err() {
                    break;
                }
            }
            let _ = w.flush();
        }
        drop(writers);
        let _ = std::fs::remove_file(path);
        prefetch_telemetry::log::flush();
        Ok(())
    }

    fn lock_writers(
        writers: &Mutex<HashMap<ConnId, UnixStream>>,
    ) -> std::sync::MutexGuard<'_, HashMap<ConnId, UnixStream>> {
        writers.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Write responses back to their connections; a dead client just
    /// loses its responses, it cannot stall or crash the service.
    fn route(writers: &Mutex<HashMap<ConnId, UnixStream>>, responses: Vec<(ConnId, String)>) {
        let mut writers = lock_writers(writers);
        let mut dead: Vec<ConnId> = Vec::new();
        for (conn, line) in responses {
            let Some(stream) = writers.get_mut(&conn) else { continue };
            if writeln!(stream, "{line}").is_err() {
                dead.push(conn);
            }
        }
        for conn in dead {
            writers.remove(&conn);
        }
    }
}
