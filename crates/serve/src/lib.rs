//! `prefetch-serve`: a fault-tolerant multi-tenant prefetch-advisor
//! service over the cost-benefit simulator.
//!
//! The paper's advisor is a per-process algorithm; this crate turns it
//! into a long-running service: many independent tenants stream access
//! events over a line protocol ([`protocol`]) and receive per-event
//! prefetch advice, with one `PrefetchTree` + cost-benefit cache state
//! per tenant ([`tenant`]). Tenants are flushed across the
//! `prefetch-pool` workers each batch ([`service`]); per-tenant
//! `catch_unwind` plus the `prefetch-core` quarantine give panic
//! isolation, and admission control ([`admission`]) bounds tenant count
//! and aggregate memory.
//!
//! Robustness contract (what the integration tests pin down):
//!
//! * overload, malformed input, and panics produce **typed responses**
//!   (`SHED`, `ERR`, `REJECT`, `PANIC`) — never a process abort;
//! * per-tenant advice streams are **byte-identical at any worker
//!   count** and to a sequential run, because a tenant's state depends
//!   only on its own ordered events;
//! * shutdown **drains**: every tenant (including quarantined ones)
//!   gets a deterministic `FINAL` report before the process exits;
//! * with `--wal-dir`, tenants are **crash-durable** ([`wal`]): every
//!   accepted event is logged before processing, group-committed per
//!   batch, and `--recover` replays each tenant through the real event
//!   path to bit-identical state — damage quarantines one tenant, a
//!   vanished WAL directory degrades to in-memory, never a crash.
//!
//! Binaries: `pfserve` (the server, stdin or unix-socket mode) and
//! `pfserve-loadgen` (script generator, [`loadgen`]).

#![warn(missing_docs)]

pub mod admission;
pub mod listener;
pub mod loadgen;
pub mod protocol;
pub mod service;
pub mod tenant;
pub mod wal;

pub use admission::{Admission, AdmissionConfig};
pub use protocol::{parse_line, ParseError, RejectReason, Request};
pub use service::{ConnId, ServeOpts, Service, ServiceStats};
pub use tenant::{TenantDefaults, TenantSpec, TenantState};
pub use wal::{RecoveryError, RecoveryReport, WalOpts, WalRecord};
