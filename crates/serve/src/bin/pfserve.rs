//! `pfserve` — the multi-tenant prefetch-advisor service.
//!
//! ```text
//! pfserve                                   # serve stdin -> stdout
//! pfserve --socket /tmp/pfserve.sock        # serve a unix socket
//! pfserve --threads 4 --queue-cap 256 \
//!         --max-tenants 2000 --memory-budget-mb 64 \
//!         --advice-dir out/advice --bench-json BENCH.json
//! ```
//!
//! Requests are lines of the `prefetch-serve` protocol (`OPEN`, `EV`,
//! `STATS`, `CLOSE`, `PANIC`, `METRICS`, `HEALTH`, `SHUTDOWN`);
//! responses are typed lines (`OK`, `ADV`, `REJECT`, `SHED`, `ERR`,
//! `PANIC`, `TRACE`, `STATS`, `FINAL`, `METRIC`, `HEALTH`, `BYE`).
//! Overload and malformed input degrade gracefully — typed
//! shed/reject/skip responses, never a crash — and `SHUTDOWN` (or stdin
//! EOF) drains every tenant to a deterministic `FINAL` report.
//!
//! | exit | meaning                              |
//! |------|--------------------------------------|
//! | 0    | drained cleanly                      |
//! | 1    | internal panic (bug — please report) |
//! | 2    | usage error                          |
//! | 3    | invalid configuration                |
//! | 4    | listener I/O error                   |

use prefetch_serve::{ServeOpts, Service};
use prefetch_wal::FsyncPolicy;
use std::process::ExitCode;

const EXIT_PANIC: u8 = 1;
const EXIT_USAGE: u8 = 2;
const EXIT_INVALID_CONFIG: u8 = 3;
const EXIT_LISTENER_IO: u8 = 4;

struct Args {
    socket: Option<std::path::PathBuf>,
    threads: usize,
    batch: usize,
    opts: ServeOpts,
    bench_json: Option<std::path::PathBuf>,
    recovery_bench_json: Option<std::path::PathBuf>,
    log_json: Option<std::path::PathBuf>,
    quiet: bool,
}

fn usage() -> String {
    "usage: pfserve [--socket PATH] [--threads N] [--batch N] [--queue-cap N]\n\
     \x20             [--max-tenants N] [--memory-budget-mb N]\n\
     \x20             [--default-cache N] [--default-nodes N]\n\
     \x20             [--advice-dir DIR] [--snapshot-dir DIR]\n\
     \x20             [--wal-dir DIR] [--recover DIR]\n\
     \x20             [--fsync always|never] [--fsync-every-n N]\n\
     \x20             [--fsync-interval-ms N] [--checkpoint-every N]\n\
     \x20             [--recover-cap-events N] [--recovery-bench-json PATH]\n\
     \x20             [--metrics-out PATH] [--metrics-every N] [--trace-ring N]\n\
     \x20             [--log-json PATH] [--bench-json PATH] [--kernel scalar|auto]\n\
     \x20             [--no-echo-advice] [--quiet]\n\
     \n\
     Serves the pfserve line protocol on stdin (default) or a unix socket.\n\
     SHUTDOWN or stdin EOF drains every tenant and exits 0.\n\
     --snapshot-dir persists each tenant's prefetch tree (pftree-snap/v1)\n\
     at CLOSE/drain and warm-starts same-named tenants on OPEN.\n\
     --wal-dir logs every accepted event to a per-tenant write-ahead log\n\
     (group-committed per batch; --fsync picks the durability/throughput\n\
     point). After a crash, --recover DIR replays the logs through the\n\
     real event path: tenant state, counters, and advice files come back\n\
     bit-identical; damaged logs quarantine only their own tenant.\n\
     --recover-cap-events bounds replay; longer logs warm-start degraded\n\
     from their latest checkpoint (--checkpoint-every, 0 disables).\n\
     --metrics-out enables the sharded metrics registry and appends\n\
     pfmetrics-snap/v1 JSONL snapshots to PATH: every --metrics-every\n\
     events (0 = at drain only) and always once at drain. The METRICS\n\
     verb renders the same registry as Prometheus-style METRIC lines;\n\
     HEALTH answers one liveness line. --trace-ring N keeps the last N\n\
     request-lifecycle trace events per tenant (sequence-stamped, never\n\
     wall clock) and dumps them as TRACE lines on panic or WAL degrade."
        .to_string()
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        socket: None,
        threads: 0,
        batch: 256,
        opts: ServeOpts::default(),
        bench_json: None,
        recovery_bench_json: None,
        log_json: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    let next_val = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => args.socket = Some(next_val(&mut it, "--socket")?.into()),
            "--threads" => {
                args.threads = next_val(&mut it, "--threads")?
                    .parse()
                    .map_err(|_| "--threads needs an integer".to_string())?;
            }
            "--batch" => {
                args.batch = next_val(&mut it, "--batch")?
                    .parse()
                    .map_err(|_| "--batch needs an integer".to_string())?;
            }
            "--queue-cap" => {
                args.opts.queue_cap = next_val(&mut it, "--queue-cap")?
                    .parse()
                    .map_err(|_| "--queue-cap needs an integer".to_string())?;
            }
            "--max-tenants" => {
                args.opts.admission.max_tenants = next_val(&mut it, "--max-tenants")?
                    .parse()
                    .map_err(|_| "--max-tenants needs an integer".to_string())?;
            }
            "--memory-budget-mb" => {
                let mb: u64 = next_val(&mut it, "--memory-budget-mb")?
                    .parse()
                    .map_err(|_| "--memory-budget-mb needs an integer".to_string())?;
                args.opts.admission.memory_budget_bytes = Some(mb * 1024 * 1024);
            }
            "--default-cache" => {
                args.opts.defaults.cache_blocks = next_val(&mut it, "--default-cache")?
                    .parse()
                    .map_err(|_| "--default-cache needs an integer".to_string())?;
            }
            "--default-nodes" => {
                args.opts.defaults.node_limit = next_val(&mut it, "--default-nodes")?
                    .parse()
                    .map_err(|_| "--default-nodes needs an integer".to_string())?;
            }
            "--advice-dir" => {
                args.opts.advice_dir = Some(next_val(&mut it, "--advice-dir")?.into())
            }
            "--snapshot-dir" => {
                args.opts.snapshot_dir = Some(next_val(&mut it, "--snapshot-dir")?.into())
            }
            "--wal-dir" => args.opts.wal.dir = Some(next_val(&mut it, "--wal-dir")?.into()),
            "--recover" => {
                args.opts.wal.dir = Some(next_val(&mut it, "--recover")?.into());
                args.opts.wal.recover = true;
            }
            "--fsync" => {
                args.opts.wal.fsync = match next_val(&mut it, "--fsync")?.as_str() {
                    "always" => FsyncPolicy::Always,
                    "never" => FsyncPolicy::Never,
                    other => return Err(format!("--fsync {other:?} must be always or never")),
                };
            }
            "--fsync-every-n" => {
                let n: u64 = next_val(&mut it, "--fsync-every-n")?
                    .parse()
                    .map_err(|_| "--fsync-every-n needs an integer".to_string())?;
                args.opts.wal.fsync = FsyncPolicy::EveryN(n);
            }
            "--fsync-interval-ms" => {
                let ms: u64 = next_val(&mut it, "--fsync-interval-ms")?
                    .parse()
                    .map_err(|_| "--fsync-interval-ms needs an integer".to_string())?;
                args.opts.wal.fsync = FsyncPolicy::IntervalMs(ms);
            }
            "--checkpoint-every" => {
                args.opts.wal.checkpoint_every =
                    next_val(&mut it, "--checkpoint-every")?
                        .parse()
                        .map_err(|_| "--checkpoint-every needs an integer".to_string())?;
            }
            "--recover-cap-events" => {
                args.opts.wal.recover_cap_events = next_val(&mut it, "--recover-cap-events")?
                    .parse()
                    .map_err(|_| "--recover-cap-events needs an integer".to_string())?;
            }
            "--recovery-bench-json" => {
                args.recovery_bench_json = Some(next_val(&mut it, "--recovery-bench-json")?.into());
            }
            "--kernel" => {
                let v = next_val(&mut it, "--kernel")?;
                prefetch_core::kernel::force(v.parse().map_err(|e| format!("bad --kernel: {e}"))?);
            }
            "--metrics-out" => {
                args.opts.metrics_out = Some(next_val(&mut it, "--metrics-out")?.into());
            }
            "--metrics-every" => {
                args.opts.metrics_every = next_val(&mut it, "--metrics-every")?
                    .parse()
                    .map_err(|_| "--metrics-every needs an integer".to_string())?;
            }
            "--trace-ring" => {
                args.opts.trace_ring = next_val(&mut it, "--trace-ring")?
                    .parse()
                    .map_err(|_| "--trace-ring needs an integer".to_string())?;
            }
            "--log-json" => args.log_json = Some(next_val(&mut it, "--log-json")?.into()),
            "--bench-json" => args.bench_json = Some(next_val(&mut it, "--bench-json")?.into()),
            "--no-echo-advice" => args.opts.echo_advice = false,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    Ok(args)
}

fn check_config(args: &Args) -> Result<(), String> {
    if args.batch == 0 {
        return Err("--batch must be positive".into());
    }
    if args.opts.queue_cap == 0 {
        return Err("--queue-cap must be positive".into());
    }
    if args.opts.admission.max_tenants == 0 {
        return Err("--max-tenants must be positive".into());
    }
    if args.opts.defaults.cache_blocks == 0 || args.opts.defaults.node_limit == 0 {
        return Err("--default-cache and --default-nodes must be positive".into());
    }
    if args.opts.metrics_every > 0 && args.opts.metrics_out.is_none() {
        return Err("--metrics-every needs --metrics-out".into());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    if let Err(msg) = check_config(&args) {
        eprintln!("pfserve: {msg}");
        return ExitCode::from(EXIT_INVALID_CONFIG);
    }
    if let Some(path) = &args.log_json {
        if let Err(e) = prefetch_telemetry::log::set_json_path(path) {
            eprintln!("pfserve: cannot open --log-json {}: {e}", path.display());
            return ExitCode::from(EXIT_INVALID_CONFIG);
        }
    }
    prefetch_pool::set_threads(args.threads);

    let mut service = match Service::new(args.opts.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pfserve: cannot initialize service: {e}");
            return ExitCode::from(EXIT_INVALID_CONFIG);
        }
    };
    if args.opts.wal.recover {
        let r = service.recover();
        if !args.quiet {
            eprintln!(
                "pfserve: recovered: replayed={} degraded={} closed={} quarantined={} \
                 torn_truncated={} replayed_events={} elapsed_ms={}",
                r.replayed,
                r.degraded,
                r.closed,
                r.quarantined,
                r.torn_truncated,
                r.replayed_events,
                r.elapsed_ms
            );
            for (tenant, err) in &r.errors {
                eprintln!("pfserve: recovery: {tenant}: {err}");
            }
        }
    }
    if !args.quiet {
        eprintln!(
            "pfserve: serving on {} ({} worker threads, batch {})",
            args.socket.as_ref().map_or("stdin".to_string(), |p| p.display().to_string()),
            prefetch_pool::effective_threads(),
            args.batch,
        );
    }

    let served = match &args.socket {
        Some(path) => {
            #[cfg(unix)]
            {
                prefetch_serve::listener::run_unix(&mut service, path, args.batch)
            }
            #[cfg(not(unix))]
            {
                eprintln!("pfserve: --socket {} requires unix", path.display());
                return ExitCode::from(EXIT_USAGE);
            }
        }
        None => prefetch_serve::listener::run_stdin(&mut service, args.batch),
    };
    if let Err(e) = served {
        eprintln!("pfserve: listener I/O error: {e}");
        return ExitCode::from(EXIT_LISTENER_IO);
    }

    if let Some(path) = &args.bench_json {
        if let Err(e) = std::fs::write(path, service.bench_json()) {
            eprintln!("pfserve: cannot write --bench-json {}: {e}", path.display());
            return ExitCode::from(EXIT_LISTENER_IO);
        }
    }
    if let Some(path) = &args.recovery_bench_json {
        if let Err(e) = std::fs::write(path, service.recovery_bench_json()) {
            eprintln!("pfserve: cannot write --recovery-bench-json {}: {e}", path.display());
            return ExitCode::from(EXIT_LISTENER_IO);
        }
    }
    if !args.quiet {
        let s = &service.stats;
        eprintln!(
            "pfserve: drained: tenants={} events={} sheds={} rejects={} parse_errors={} \
             quarantined={}",
            s.opens, s.events, s.sheds, s.rejects, s.parse_errors, s.quarantined
        );
    }
    // Reaching here means every fault was contained; a panic that
    // escapes main (EXIT_PANIC via the default handler) is a bug.
    let _ = EXIT_PANIC;
    ExitCode::SUCCESS
}
