//! `pfserve-loadgen` — generate load and chaos scripts for `pfserve`.
//!
//! ```text
//! pfserve-loadgen --tenants 1000 --events 64 > load.txt
//! pfserve-loadgen --tenants 1000 --events 64 --chaos \
//!                 --manifest tenants.manifest > chaos.txt
//! pfserve-loadgen --tenants 1000 --events 64 --chaos | pfserve --threads 4
//! ```
//!
//! The script `OPEN`s every tenant up front, interleaves all tenants'
//! events in round-robin slices (thousands of concurrently-live,
//! phase-shifting tenants), `CLOSE`s the survivors, and ends with
//! `SHUTDOWN`. With `--chaos`, a deterministic subset of tenants gets
//! per-tenant fault injection and another subset gets a forced mid-run
//! panic — chosen by index arithmetic so every *clean* tenant's lines
//! are byte-identical to the no-chaos script (that property is what the
//! CI chaos job diffs against).
//!
//! Exit codes: 0 generated, 2 usage error, 4 output I/O error.

use prefetch_serve::loadgen::{generate, LoadgenOpts};
use std::io::Write;
use std::process::ExitCode;

const EXIT_USAGE: u8 = 2;
const EXIT_IO: u8 = 4;

fn usage() -> String {
    "usage: pfserve-loadgen [--tenants N] [--events N] [--slice N] [--phase-len N]\n\
     \x20                     [--seed N] [--chaos] [--no-shutdown] [--manifest PATH]\n\
     \n\
     Writes a pfserve request script to stdout."
        .to_string()
}

fn parse_args() -> Result<(LoadgenOpts, Option<std::path::PathBuf>), String> {
    let mut opts = LoadgenOpts::default();
    let mut manifest = None;
    let mut it = std::env::args().skip(1);
    let next_val = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    let int = |flag: &str, v: String| -> Result<usize, String> {
        v.parse().map_err(|_| format!("{flag} needs an integer"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tenants" => opts.tenants = int("--tenants", next_val(&mut it, "--tenants")?)?,
            "--events" => {
                opts.events_per_tenant = int("--events", next_val(&mut it, "--events")?)?;
            }
            "--slice" => opts.slice = int("--slice", next_val(&mut it, "--slice")?)?,
            "--phase-len" => {
                opts.phase_len = int("--phase-len", next_val(&mut it, "--phase-len")?)?
            }
            "--seed" => {
                opts.seed = next_val(&mut it, "--seed")?
                    .parse()
                    .map_err(|_| "--seed needs a u64".to_string())?;
            }
            "--chaos" => opts.chaos = true,
            "--no-shutdown" => opts.shutdown = false,
            "--manifest" => manifest = Some(next_val(&mut it, "--manifest")?.into()),
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    if opts.tenants == 0 || opts.events_per_tenant == 0 {
        return Err("--tenants and --events must be positive".to_string());
    }
    Ok((opts, manifest))
}

fn main() -> ExitCode {
    let (opts, manifest_path) = match parse_args() {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let generated = generate(&opts);
    if let Some(path) = manifest_path {
        if let Err(e) = std::fs::write(&path, generated.manifest_text()) {
            eprintln!("pfserve-loadgen: cannot write manifest {}: {e}", path.display());
            return ExitCode::from(EXIT_IO);
        }
    }
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    for line in &generated.lines {
        if let Err(e) = writeln!(out, "{line}") {
            eprintln!("pfserve-loadgen: stdout write failed: {e}");
            return ExitCode::from(EXIT_IO);
        }
    }
    if let Err(e) = out.flush() {
        eprintln!("pfserve-loadgen: stdout flush failed: {e}");
        return ExitCode::from(EXIT_IO);
    }
    ExitCode::SUCCESS
}
