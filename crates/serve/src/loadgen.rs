//! Load and chaos script generation for `pfserve`.
//!
//! Composes the synthetic trace generators (`prefetch-trace`) into a
//! request script driving thousands of concurrent, phase-shifting
//! tenants. Each tenant interleaves with every other in round-robin
//! slices — the service sees all tenants live at once — while its own
//! events stay in order. Tenants phase-shift between two different
//! workload generators every `phase_len` events, exercising the
//! prefetch tree's re-learning path.
//!
//! Chaos mode layers faults on top *without touching clean tenants*:
//! fates are chosen by index arithmetic (never a shared RNG), so a clean
//! tenant's `OPEN` and `EV` lines are byte-identical between a chaos
//! script and its no-chaos baseline. That property is what lets the
//! `serve-chaos` CI job diff surviving tenants' advice files against a
//! sequential baseline run.

use prefetch_trace::synth::TraceKind;
use prefetch_trace::TraceSource;
use std::fmt::Write as _;

/// How a tenant behaves in the generated script.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fate {
    /// Ordinary tenant; identical lines in chaos and baseline scripts.
    Clean,
    /// Opened with per-tenant fault injection (`disks=`, `fault_rate=`).
    Faulty,
    /// A `PANIC` chaos hook is inserted midway through its events.
    Panicked,
}

impl Fate {
    /// Stable name used in the manifest.
    pub fn name(self) -> &'static str {
        match self {
            Fate::Clean => "clean",
            Fate::Faulty => "faulty",
            Fate::Panicked => "panic",
        }
    }
}

/// Script-generation options.
#[derive(Clone, Copy, Debug)]
pub struct LoadgenOpts {
    /// Number of tenants.
    pub tenants: usize,
    /// Access events per tenant.
    pub events_per_tenant: usize,
    /// Events emitted per tenant per round-robin turn. Keep this well
    /// under the server's `--queue-cap` so load scripts never shed
    /// (shedding is exercised separately; a shed event would perturb
    /// the advice stream and break baseline diffs).
    pub slice: usize,
    /// Events between workload phase shifts.
    pub phase_len: usize,
    /// Base seed; tenant `i` derives its workloads from `seed + i`.
    pub seed: u64,
    /// Inject faults and forced panics.
    pub chaos: bool,
    /// End the script with `SHUTDOWN` (drain + exit).
    pub shutdown: bool,
}

impl Default for LoadgenOpts {
    fn default() -> Self {
        LoadgenOpts {
            tenants: 1000,
            events_per_tenant: 64,
            slice: 8,
            phase_len: 24,
            seed: 1,
            chaos: false,
            shutdown: true,
        }
    }
}

/// A generated script plus its tenant manifest.
pub struct Generated {
    /// Request lines, in order.
    pub lines: Vec<String>,
    /// `(tenant, fate)` for every tenant, in tenant order.
    pub manifest: Vec<(String, Fate)>,
    /// Per-tenant fate detail fields, aligned with `manifest`: always
    /// `events=`, plus the chaos parameters that fate drew (`panic_at=`
    /// for panicked tenants, `disks=`/`fault_rate=`/`fault_seed=` for
    /// faulty ones).
    details: Vec<String>,
}

impl Generated {
    /// Render the manifest as `tenant fate detail...` lines. Consumers
    /// keyed on the first two fields (the CI advice-diff job) keep
    /// parsing; the detail fields tell a postmortem exactly which chaos
    /// each tenant was dealt without re-deriving the index arithmetic.
    pub fn manifest_text(&self) -> String {
        let mut out = String::new();
        for ((tenant, fate), detail) in self.manifest.iter().zip(&self.details) {
            let _ = writeln!(out, "{tenant} {} {detail}", fate.name());
        }
        out
    }
}

/// Tenant name for index `i` (zero-padded so lexicographic = numeric).
pub fn tenant_name(i: usize) -> String {
    format!("t{i:05}")
}

/// Which fate index `i` draws under chaos. Index arithmetic, not RNG:
/// the same tenant is clean in both the chaos and the baseline script,
/// with identical lines.
fn fate_for(i: usize, chaos: bool) -> Fate {
    if !chaos {
        return Fate::Clean;
    }
    // Keep the two fault populations disjoint and mostly clean: roughly
    // 1 in 13 panics, 1 in 7 of the rest gets fault injection.
    if i % 13 == 5 {
        Fate::Panicked
    } else if i % 7 == 3 {
        Fate::Faulty
    } else {
        Fate::Clean
    }
}

/// The two workload generators tenant `i` phase-shifts between.
fn kinds_for(i: usize) -> (TraceKind, TraceKind) {
    let all = TraceKind::ALL;
    let a = all[i % all.len()];
    let b = all[(i + 1 + i / all.len()) % all.len()];
    (a, b)
}

/// Generate a request script. See the module docs for the determinism
/// contract between chaos and baseline scripts.
pub fn generate(opts: &LoadgenOpts) -> Generated {
    let mut lines = Vec::new();
    let mut manifest = Vec::with_capacity(opts.tenants);
    let slice = opts.slice.max(1);
    let phase_len = opts.phase_len.max(1);

    // Pre-draw each tenant's full block sequence so emission order
    // (round-robin) is independent of generator internals.
    let mut blocks: Vec<Vec<u64>> = Vec::with_capacity(opts.tenants);
    for i in 0..opts.tenants {
        let (ka, kb) = kinds_for(i);
        let seed = opts.seed.wrapping_add(i as u64);
        // Each phase source yields plenty; draw lazily per phase.
        let mut a = ka.stream(opts.events_per_tenant, seed);
        let mut b = kb.stream(opts.events_per_tenant, seed ^ 0x9e37_79b9);
        let mut seq = Vec::with_capacity(opts.events_per_tenant);
        for n in 0..opts.events_per_tenant {
            let use_a = (n / phase_len).is_multiple_of(2);
            let src: &mut dyn TraceSource = if use_a { &mut a } else { &mut b };
            let rec = match src.next_record() {
                Ok(Some(rec)) => rec,
                // Synth sources are finite; rewind and keep going.
                _ => {
                    let _ = src.rewind();
                    src.next_record().ok().flatten().expect("rewound synth source has records")
                }
            };
            seq.push(rec.block.0);
        }
        blocks.push(seq);
    }

    // OPEN everyone first (they are all concurrently live), then
    // round-robin event slices.
    let panic_at = opts.events_per_tenant / 2;
    let mut details = Vec::with_capacity(opts.tenants);
    for i in 0..opts.tenants {
        let name = tenant_name(i);
        let fate = fate_for(i, opts.chaos);
        match fate {
            Fate::Faulty => {
                let fault_seed = opts.seed.wrapping_add(i as u64);
                lines.push(format!("OPEN {name} disks=2 fault_rate=0.05 fault_seed={fault_seed}"));
                details.push(format!(
                    "events={} disks=2 fault_rate=0.05 fault_seed={fault_seed}",
                    opts.events_per_tenant
                ));
            }
            Fate::Panicked => {
                lines.push(format!("OPEN {name}"));
                details.push(format!("events={} panic_at={panic_at}", opts.events_per_tenant));
            }
            Fate::Clean => {
                lines.push(format!("OPEN {name}"));
                details.push(format!("events={}", opts.events_per_tenant));
            }
        }
        manifest.push((name, fate));
    }

    let mut emitted = vec![0usize; opts.tenants];
    let mut remaining = opts.tenants;
    while remaining > 0 {
        remaining = 0;
        for i in 0..opts.tenants {
            let done = emitted[i];
            if done >= opts.events_per_tenant {
                continue;
            }
            let (name, fate) = &manifest[i];
            let stop = (done + slice).min(opts.events_per_tenant);
            for (n, block) in blocks[i].iter().enumerate().take(stop).skip(done) {
                if *fate == Fate::Panicked && n == panic_at {
                    // Arm the chaos hook: the next event panics and the
                    // tenant is quarantined, so its remaining events are
                    // answered with typed REJECTs.
                    lines.push(format!("PANIC {name}"));
                }
                lines.push(format!("EV {name} {block}"));
            }
            emitted[i] = stop;
            if stop < opts.events_per_tenant {
                remaining += 1;
            }
        }
    }

    for (name, fate) in &manifest {
        if *fate != Fate::Panicked {
            lines.push(format!("CLOSE {name}"));
        }
        // A quarantined tenant's CLOSE would only draw a REJECT; its
        // final report comes from the drain instead.
    }
    if opts.shutdown {
        lines.push("SHUTDOWN".to_string());
    }
    Generated { lines, manifest, details }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_tenant_lines_are_identical_with_and_without_chaos() {
        let base = LoadgenOpts { tenants: 40, events_per_tenant: 12, ..LoadgenOpts::default() };
        let clean = generate(&LoadgenOpts { chaos: false, ..base });
        let chaos = generate(&LoadgenOpts { chaos: true, ..base });
        assert!(chaos.manifest.iter().any(|(_, f)| *f == Fate::Panicked));
        assert!(chaos.manifest.iter().any(|(_, f)| *f == Fate::Faulty));
        for (tenant, fate) in &chaos.manifest {
            if *fate != Fate::Clean {
                continue;
            }
            let pick = |g: &Generated| -> Vec<String> {
                g.lines
                    .iter()
                    .filter(|l| l.split_ascii_whitespace().nth(1) == Some(tenant.as_str()))
                    .cloned()
                    .collect()
            };
            assert_eq!(pick(&clean), pick(&chaos), "clean tenant {tenant} must not shift");
        }
    }

    #[test]
    fn script_is_deterministic_and_interleaved() {
        let opts =
            LoadgenOpts { tenants: 10, events_per_tenant: 8, slice: 2, ..LoadgenOpts::default() };
        let a = generate(&opts);
        let b = generate(&opts);
        assert_eq!(a.lines, b.lines);
        assert_eq!(a.lines.last().map(String::as_str), Some("SHUTDOWN"));
        // Round-robin: tenant 0's events do not all precede tenant 9's.
        let pos = |lines: &[String], needle: &str| {
            lines.iter().position(|l| l.starts_with(needle)).unwrap()
        };
        assert!(
            pos(&a.lines, "EV t00009")
                < a.lines.iter().rposition(|l| l.starts_with("EV t00000")).unwrap()
        );
        // Every tenant gets exactly events_per_tenant EV lines.
        for (tenant, _) in &a.manifest {
            let evs = a.lines.iter().filter(|l| l.starts_with(&format!("EV {tenant} "))).count();
            assert_eq!(evs, 8);
        }
    }

    #[test]
    fn manifest_text_lists_every_tenant() {
        let g =
            generate(&LoadgenOpts { tenants: 5, events_per_tenant: 2, ..LoadgenOpts::default() });
        let text = g.manifest_text();
        assert_eq!(text.lines().count(), 5);
        assert!(text.contains("t00000 clean events=2"));
    }

    #[test]
    fn manifest_records_chaos_fate_details() {
        let g = generate(&LoadgenOpts {
            tenants: 40,
            events_per_tenant: 12,
            seed: 7,
            chaos: true,
            ..LoadgenOpts::default()
        });
        let text = g.manifest_text();
        for (i, line) in text.lines().enumerate() {
            let mut f = line.split_ascii_whitespace();
            let (tenant, fate) = (f.next().unwrap(), f.next().unwrap());
            assert_eq!(tenant, tenant_name(i));
            match fate {
                "clean" => assert_eq!(line, format!("{tenant} clean events=12")),
                "panic" => assert_eq!(line, format!("{tenant} panic events=12 panic_at=6")),
                "faulty" => assert_eq!(
                    line,
                    format!(
                        "{tenant} faulty events=12 disks=2 fault_rate=0.05 fault_seed={}",
                        7 + i as u64
                    )
                ),
                other => panic!("unknown fate {other:?} in {line:?}"),
            }
        }
        // The detail fields echo exactly what the script dealt: a faulty
        // tenant's OPEN line carries the same fault parameters.
        let (faulty, _) = g.manifest.iter().find(|(_, f)| *f == Fate::Faulty).unwrap();
        let open = g.lines.iter().find(|l| l.starts_with(&format!("OPEN {faulty}"))).unwrap();
        let detail = text.lines().find(|l| l.starts_with(faulty.as_str())).unwrap();
        for field in open.split_ascii_whitespace().skip(2) {
            assert!(detail.contains(field), "{field} missing from manifest line {detail:?}");
        }
    }
}
