//! The `pfserve` line protocol: requests in, typed responses out.
//!
//! Every request is one ASCII line of whitespace-separated fields; every
//! response is one line whose first field names its type. The protocol is
//! deliberately lossy-tolerant: a malformed line is answered with a typed
//! `ERR` response (and counted against the tenant when one can be
//! attributed), never a connection drop or a crash.
//!
//! Requests:
//!
//! ```text
//! OPEN <tenant> [key=value ...]   admit a tenant (cache=, policy=, nodes=,
//!                                 overflow=evict|freeze, disks=, fault_rate=,
//!                                 fault_seed=)
//! EV <tenant> <block>             one access event; answered with advice
//! STATS <tenant>                  live per-tenant counters
//! CLOSE <tenant>                  drain the tenant and emit its FINAL line
//! PANIC <tenant>                  chaos hook: the tenant's next event panics
//! METRICS                         point-in-time metrics exposition
//! HEALTH                          one-line service health summary
//! SHUTDOWN                        drain every tenant and stop the server
//! # ...                           comment; blank lines are ignored
//! ```
//!
//! Responses:
//!
//! ```text
//! OK <verb> <tenant>                              request applied
//! ADV <tenant> <seq> <h|p|m> stall=<ms> pf=<b,..|->  per-event advice
//! REJECT <tenant> <reason> [detail]               typed admission refusal
//! SHED <tenant> queue-full [detail]               backpressure: event dropped
//! ERR parse <detail>                              malformed line, skipped
//! PANIC <tenant> quarantined err=<msg>            tenant quarantined
//! TRACE <tenant> <seq> <stage> <detail>           flight-recorder dump line
//! STATS <tenant> k=v ...                          live counters
//! FINAL <tenant> k=v ...                          end-of-life report
//! METRIC <exposition line>                        one metrics line (METRICS)
//! HEALTH k=v ...                                  health summary (HEALTH)
//! BYE k=v ...                                     drain complete
//! ```

use std::fmt;

/// Maximum tenant-name length accepted by the protocol.
pub const MAX_TENANT_NAME: usize = 64;

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Admit a tenant with `key=value` options.
    Open {
        /// Tenant name.
        tenant: String,
        /// Raw `key=value` options, in line order.
        opts: Vec<(String, String)>,
    },
    /// One access event for a tenant.
    Event {
        /// Tenant name.
        tenant: String,
        /// Referenced block.
        block: u64,
    },
    /// Report live counters for a tenant.
    Stats {
        /// Tenant name.
        tenant: String,
    },
    /// Drain a tenant and emit its final report.
    Close {
        /// Tenant name.
        tenant: String,
    },
    /// Chaos hook: make the tenant's next event processing panic.
    Panic {
        /// Tenant name.
        tenant: String,
    },
    /// Flush every pending event and emit a point-in-time metrics
    /// exposition (`METRIC` lines + `OK metrics` trailer).
    Metrics,
    /// Emit a one-line service health summary.
    Health,
    /// Drain every tenant and stop the server.
    Shutdown,
}

/// Why a line could not be parsed. Carries the tenant name when one was
/// readable, so the skip can be charged to the right tenant's
/// `skipped_records` counter.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Tenant the malformed line addressed, when recognizable.
    pub tenant: Option<String>,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

fn check_tenant_name(name: &str) -> Result<(), String> {
    if name.is_empty() || name.len() > MAX_TENANT_NAME {
        return Err(format!("tenant name must be 1..={MAX_TENANT_NAME} chars"));
    }
    if !name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.') {
        return Err(format!("tenant name {name:?} has characters outside [A-Za-z0-9_.-]"));
    }
    Ok(())
}

/// Parse one request line. `Ok(None)` for blank lines and `#` comments.
pub fn parse_line(line: &str) -> Result<Option<Request>, ParseError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut fields = line.split_ascii_whitespace();
    let verb = fields.next().expect("non-empty line has a first field");
    let err = |tenant: Option<&str>, message: String| {
        Err(ParseError { tenant: tenant.map(str::to_owned), message })
    };
    let named_tenant = |fields: &mut std::str::SplitAsciiWhitespace<'_>,
                        verb: &str|
     -> Result<String, ParseError> {
        let t = fields.next().ok_or_else(|| ParseError {
            tenant: None,
            message: format!("{verb} needs a tenant"),
        })?;
        check_tenant_name(t).map_err(|message| ParseError { tenant: None, message })?;
        Ok(t.to_owned())
    };
    match verb {
        "OPEN" => {
            let tenant = named_tenant(&mut fields, "OPEN")?;
            let mut opts = Vec::new();
            for opt in fields {
                match opt.split_once('=') {
                    Some((k, v)) if !k.is_empty() && !v.is_empty() => {
                        opts.push((k.to_owned(), v.to_owned()));
                    }
                    _ => {
                        return err(Some(&tenant), format!("OPEN option {opt:?} is not key=value"));
                    }
                }
            }
            Ok(Some(Request::Open { tenant, opts }))
        }
        "EV" => {
            let tenant = named_tenant(&mut fields, "EV")?;
            let Some(raw) = fields.next() else {
                return err(Some(&tenant), "EV needs a block number".into());
            };
            let Ok(block) = raw.parse::<u64>() else {
                return err(Some(&tenant), format!("EV block {raw:?} is not a u64"));
            };
            if fields.next().is_some() {
                return err(Some(&tenant), "EV takes exactly tenant and block".into());
            }
            Ok(Some(Request::Event { tenant, block }))
        }
        "STATS" => Ok(Some(Request::Stats { tenant: named_tenant(&mut fields, "STATS")? })),
        "CLOSE" => Ok(Some(Request::Close { tenant: named_tenant(&mut fields, "CLOSE")? })),
        "PANIC" => Ok(Some(Request::Panic { tenant: named_tenant(&mut fields, "PANIC")? })),
        "METRICS" => {
            if fields.next().is_some() {
                return err(None, "METRICS takes no arguments".into());
            }
            Ok(Some(Request::Metrics))
        }
        "HEALTH" => {
            if fields.next().is_some() {
                return err(None, "HEALTH takes no arguments".into());
            }
            Ok(Some(Request::Health))
        }
        "SHUTDOWN" => Ok(Some(Request::Shutdown)),
        other => err(None, format!("unknown verb {other:?}")),
    }
}

/// Why a request was refused. Every variant renders to a stable
/// machine-parsable reason code, so clients can branch on the first
/// field after the tenant name.
#[derive(Clone, Debug, PartialEq)]
pub enum RejectReason {
    /// Admission control: the tenant cap is reached.
    TenantLimit {
        /// The configured cap.
        limit: usize,
    },
    /// Admission control: the aggregate memory budget would be exceeded.
    MemoryBudget {
        /// Bytes the tenant would reserve.
        requested: u64,
        /// Bytes still available under the budget.
        available: u64,
    },
    /// The tenant panicked earlier and is quarantined (never resurrected
    /// silently; this refusal is the explicit report).
    Quarantined,
    /// The tenant was never opened, or was closed.
    UnknownTenant,
    /// The tenant is already open.
    Duplicate,
    /// The OPEN options did not form a valid configuration.
    BadConfig(String),
}

/// Number of distinct [`RejectReason`] codes (per-reason tally width).
pub const N_REJECT_REASONS: usize = 6;

/// Every reason code in the stable tally order of
/// [`RejectReason::index`].
pub const REJECT_CODES: [&str; N_REJECT_REASONS] =
    ["tenant-limit", "memory-budget", "quarantined", "unknown-tenant", "duplicate", "bad-config"];

/// Render a per-reason reject tally as the stable
/// `rejects=<code>:<n>,...` field value (every code, [`REJECT_CODES`]
/// order).
pub fn render_reject_tally(tally: &[u64; N_REJECT_REASONS]) -> String {
    let mut s = String::new();
    for (i, (code, n)) in REJECT_CODES.iter().zip(tally).enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("{code}:{n}"));
    }
    s
}

impl RejectReason {
    /// Stable machine-readable reason code.
    pub fn code(&self) -> &'static str {
        match self {
            RejectReason::TenantLimit { .. } => "tenant-limit",
            RejectReason::MemoryBudget { .. } => "memory-budget",
            RejectReason::Quarantined => "quarantined",
            RejectReason::UnknownTenant => "unknown-tenant",
            RejectReason::Duplicate => "duplicate",
            RejectReason::BadConfig(_) => "bad-config",
        }
    }

    /// Position of this reason in [`REJECT_CODES`] (per-reason tallies).
    pub fn index(&self) -> usize {
        match self {
            RejectReason::TenantLimit { .. } => 0,
            RejectReason::MemoryBudget { .. } => 1,
            RejectReason::Quarantined => 2,
            RejectReason::UnknownTenant => 3,
            RejectReason::Duplicate => 4,
            RejectReason::BadConfig(_) => 5,
        }
    }

    /// Render the full `REJECT` response line.
    pub fn render(&self, tenant: &str) -> String {
        match self {
            RejectReason::TenantLimit { limit } => {
                format!("REJECT {tenant} tenant-limit limit={limit}")
            }
            RejectReason::MemoryBudget { requested, available } => {
                format!("REJECT {tenant} memory-budget requested={requested} available={available}")
            }
            RejectReason::BadConfig(detail) => format!("REJECT {tenant} bad-config {detail}"),
            _ => format!("REJECT {tenant} {}", self.code()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_verb() {
        assert_eq!(
            parse_line("OPEN t1 cache=64 policy=tree").unwrap().unwrap(),
            Request::Open {
                tenant: "t1".into(),
                opts: vec![("cache".into(), "64".into()), ("policy".into(), "tree".into())],
            }
        );
        assert_eq!(
            parse_line("EV t1 42").unwrap().unwrap(),
            Request::Event { tenant: "t1".into(), block: 42 }
        );
        assert_eq!(
            parse_line("STATS t1").unwrap().unwrap(),
            Request::Stats { tenant: "t1".into() }
        );
        assert_eq!(
            parse_line("CLOSE t1").unwrap().unwrap(),
            Request::Close { tenant: "t1".into() }
        );
        assert_eq!(
            parse_line("PANIC t1").unwrap().unwrap(),
            Request::Panic { tenant: "t1".into() }
        );
        assert_eq!(parse_line("METRICS").unwrap().unwrap(), Request::Metrics);
        assert_eq!(parse_line("HEALTH").unwrap().unwrap(), Request::Health);
        assert_eq!(parse_line("SHUTDOWN").unwrap().unwrap(), Request::Shutdown);
    }

    #[test]
    fn metrics_and_health_take_no_arguments() {
        assert!(parse_line("METRICS t1").is_err());
        assert!(parse_line("HEALTH now").is_err());
    }

    #[test]
    fn reject_tally_renders_every_code_in_order() {
        let mut tally = [0u64; N_REJECT_REASONS];
        tally[RejectReason::Quarantined.index()] = 2;
        tally[RejectReason::BadConfig("x".into()).index()] = 1;
        assert_eq!(
            render_reject_tally(&tally),
            "tenant-limit:0,memory-budget:0,quarantined:2,unknown-tenant:0,duplicate:0,\
             bad-config:1"
        );
        // index() and code() agree with REJECT_CODES.
        for (i, code) in REJECT_CODES.iter().enumerate() {
            let reason = match i {
                0 => RejectReason::TenantLimit { limit: 1 },
                1 => RejectReason::MemoryBudget { requested: 1, available: 0 },
                2 => RejectReason::Quarantined,
                3 => RejectReason::UnknownTenant,
                4 => RejectReason::Duplicate,
                _ => RejectReason::BadConfig(String::new()),
            };
            assert_eq!(reason.index(), i);
            assert_eq!(&reason.code(), code);
        }
    }

    #[test]
    fn blank_lines_and_comments_are_skipped() {
        assert_eq!(parse_line("").unwrap(), None);
        assert_eq!(parse_line("   ").unwrap(), None);
        assert_eq!(parse_line("# a comment").unwrap(), None);
    }

    #[test]
    fn malformed_lines_are_typed_errors_with_attribution() {
        let e = parse_line("EV t1 not-a-number").unwrap_err();
        assert_eq!(e.tenant.as_deref(), Some("t1"));
        assert!(e.message.contains("not a u64"));

        let e = parse_line("EV").unwrap_err();
        assert_eq!(e.tenant, None);

        let e = parse_line("FROB t1").unwrap_err();
        assert!(e.message.contains("unknown verb"));

        let e = parse_line("OPEN t1 cache").unwrap_err();
        assert_eq!(e.tenant.as_deref(), Some("t1"));

        let e = parse_line("OPEN bad/name").unwrap_err();
        assert!(e.message.contains("characters outside"));

        let long = "x".repeat(MAX_TENANT_NAME + 1);
        assert!(parse_line(&format!("EV {long} 1")).is_err());
    }

    #[test]
    fn reject_reasons_render_stable_codes() {
        assert_eq!(
            RejectReason::TenantLimit { limit: 8 }.render("t"),
            "REJECT t tenant-limit limit=8"
        );
        assert_eq!(
            RejectReason::MemoryBudget { requested: 100, available: 10 }.render("t"),
            "REJECT t memory-budget requested=100 available=10"
        );
        assert_eq!(RejectReason::Quarantined.render("t"), "REJECT t quarantined");
        assert_eq!(RejectReason::UnknownTenant.render("t"), "REJECT t unknown-tenant");
        assert_eq!(RejectReason::Duplicate.render("t"), "REJECT t duplicate");
        assert_eq!(
            RejectReason::BadConfig("cache=0".into()).render("t"),
            "REJECT t bad-config cache=0"
        );
    }
}
