//! Crash-recovery integration tests: the durability contract of `pfserve`.
//!
//! The load-bearing property is **kill-anywhere bit-identity**: with
//! `fsync always`, crash the service at any point (drop without drain),
//! recover from the write-ahead logs, feed the remaining script, and every
//! tenant's advice file — events, advice, counters, FINAL report — is
//! byte-identical to an uninterrupted run (modulo the honest
//! `recovered=` marker). Around it, the damage-containment properties:
//! any single flipped bit or truncation quarantines or prefix-truncates
//! only the damaged tenant, injected write/sync faults degrade only their
//! victim, and an unusable WAL directory degrades the whole service to
//! in-memory-only — recovery and serving never panic, never abort.

use prefetch_disk::DurabilityFaultPlan;
use prefetch_serve::{ServeOpts, Service, TenantDefaults, TenantSpec, WalOpts, WalRecord};
use prefetch_wal::{AppendLog, FsyncPolicy};
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pfserve-recovery-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// `ServeOpts` with advice files and an always-fsync WAL — the strictest
/// durability point, where acked implies durable.
fn opts(advice: &Path, wal: &Path) -> ServeOpts {
    ServeOpts {
        advice_dir: Some(advice.to_path_buf()),
        echo_advice: false,
        wal: WalOpts {
            dir: Some(wal.to_path_buf()),
            fsync: FsyncPolicy::Always,
            ..WalOpts::default()
        },
        ..ServeOpts::default()
    }
}

/// A deterministic interleaved script: `tenants` tenants, `events` events
/// each, walking overlapping block sequences so the prefetch trees learn
/// real structure and the advice streams are non-trivial.
fn script(tenants: usize, events: usize) -> Vec<String> {
    let mut lines = Vec::new();
    for t in 0..tenants {
        lines.push(format!("OPEN t{t} cache=8 nodes=128"));
    }
    for e in 0..events {
        for t in 0..tenants {
            let block = (e as u64).wrapping_mul(2654435761).wrapping_add(t as u64 * 97) % 48;
            lines.push(format!("EV t{t} {block}"));
        }
    }
    lines
}

fn feed(service: &mut Service, lines: &[String], chunk: usize) {
    for batch in lines.chunks(chunk) {
        let tagged: Vec<(u64, String)> = batch.iter().map(|l| (0, l.clone())).collect();
        let _ = service.process_batch(&tagged);
    }
}

/// A tenant's advice file with the `recovered=` marker normalised away —
/// the one field that is *supposed* to differ after a recovery.
fn advice_file(dir: &Path, tenant: &str) -> String {
    fs::read_to_string(dir.join(format!("{tenant}.advice")))
        .unwrap_or_default()
        .replace(" recovered=replayed", " recovered=none")
        .replace(" recovered=degraded", " recovered=none")
}

/// Run the full script uninterrupted and drain; returns the root so the
/// caller can read `advice-base/` and clone `wal-base/`.
fn baseline(root: &Path, lines: &[String]) {
    let ab = root.join("advice-base");
    let wb = root.join("wal-base");
    let mut s = Service::new(opts(&ab, &wb)).expect("baseline service");
    feed(&mut s, lines, 16);
    let _ = s.drain();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    /// Kill-anywhere bit-identity: crash after any prefix of the script
    /// at any batch size, recover, feed the rest — every advice file
    /// matches the uninterrupted run byte for byte.
    #[test]
    fn random_kill_points_recover_bit_identical(cut in 0usize..=93, chunk in 1usize..9) {
        let root = tmp_dir(&format!("kill-{cut}-{chunk}"));
        let lines = script(3, 30);
        let cut = cut.min(lines.len());
        baseline(&root, &lines);

        // Crash: feed a prefix, then drop without drain.
        let ar = root.join("advice-rec");
        let wr = root.join("wal-rec");
        let crashed = Service::new(opts(&ar, &wr)).expect("crash service");
        {
            let mut crashed = crashed;
            feed(&mut crashed, &lines[..cut], chunk);
        }

        // Recover, feed the suffix, drain.
        let mut ropts = opts(&ar, &wr);
        ropts.wal.recover = true;
        let mut s = Service::new(ropts).expect("recovery service");
        let report = s.recover();
        prop_assert!(
            report.quarantined == 0,
            "clean logs must not quarantine: {:?}",
            report.errors
        );
        prop_assert_eq!(report.degraded, 0);
        feed(&mut s, &lines[cut..], 16);
        let _ = s.drain();

        let ab = root.join("advice-base");
        for t in 0..3 {
            let name = format!("t{t}");
            prop_assert!(
                advice_file(&ab, &name) == advice_file(&ar, &name),
                "tenant {} diverged after crash at line {}",
                name,
                cut
            );
        }
        let _ = fs::remove_dir_all(&root);
    }
}

/// One flipped bit anywhere in a WAL never panics recovery, never reaches
/// the damaged tenant's advice silently (it is quarantined, or honestly
/// truncated to a clean replayed prefix), and never touches the sibling.
#[test]
fn bit_flips_quarantine_or_truncate_only_the_victim() {
    let root = tmp_dir("bitflip");
    let lines = script(2, 20);
    baseline(&root, &lines);
    let ab = root.join("advice-base");
    let wb = root.join("wal-base");
    let pristine_t0 = fs::read(wb.join("t0.wal")).unwrap();
    let pristine_t1 = fs::read(wb.join("t1.wal")).unwrap();
    let base_t0 = advice_file(&ab, "t0");
    let base_t1 = advice_file(&ab, "t1");

    // Every bit of the header and first record, then a stride across the
    // rest of the file: headers, length fields, fingerprints, payloads.
    let mut targets: Vec<usize> = (0..20 * 8).collect();
    targets.extend((20 * 8..pristine_t0.len() * 8).step_by(41));
    let mut quarantined = 0u64;
    let mut truncated = 0u64;
    for bit in targets {
        let case = root.join(format!("flip-{bit}"));
        let wal = case.join("wal");
        let advice = case.join("advice");
        fs::create_dir_all(&wal).unwrap();
        let mut damaged = pristine_t0.clone();
        damaged[bit / 8] ^= 1 << (bit % 8);
        fs::write(wal.join("t0.wal"), &damaged).unwrap();
        fs::write(wal.join("t1.wal"), &pristine_t1).unwrap();

        let mut ropts = opts(&advice, &wal);
        ropts.wal.recover = true;
        let mut s = Service::new(ropts).unwrap();
        let report = s.recover();
        let _ = s.drain();

        // The sibling is untouched, bit for bit.
        assert_eq!(advice_file(&advice, "t1"), base_t1, "flip at bit {bit} leaked into t1");
        // The victim is quarantined, or replayed to an honest prefix.
        let t0 = advice_file(&advice, "t0");
        if report.quarantined == 1 {
            quarantined += 1;
            assert_eq!(t0, "", "quarantined t0 must not write advice (bit {bit})");
            assert_eq!(report.errors.len(), 1);
            assert_eq!(report.errors[0].0, "t0");
        } else {
            truncated += 1;
            assert_eq!(report.quarantined, 0, "bit {bit}");
            // Replayed prefix: every ADV line must match the baseline's
            // ADV lines from the start, in order — detected damage may
            // cost the tail, never silently change advice.
            let got: Vec<&str> = t0.lines().filter(|l| l.starts_with("ADV")).collect();
            let want: Vec<&str> = base_t0.lines().filter(|l| l.starts_with("ADV")).collect();
            assert!(
                got.len() <= want.len() && got[..] == want[..got.len()],
                "flip at bit {bit} silently changed t0's advice"
            );
        }
        let _ = fs::remove_dir_all(&case);
    }
    // Sanity: the sweep exercised both containment paths.
    assert!(quarantined > 0, "no flip quarantined");
    assert!(truncated > 0, "no flip tore the tail");
    let _ = fs::remove_dir_all(&root);
}

/// Truncating the WAL at every byte boundary never panics: the tenant
/// recovers to a clean replayed prefix or is quarantined; nothing else.
#[test]
fn truncation_at_every_byte_boundary_never_panics() {
    let root = tmp_dir("trunc");
    let lines = script(1, 10);
    baseline(&root, &lines);
    let ab = root.join("advice-base");
    let pristine = fs::read(root.join("wal-base").join("t0.wal")).unwrap();
    let want: Vec<String> = advice_file(&ab, "t0")
        .lines()
        .filter(|l| l.starts_with("ADV"))
        .map(str::to_string)
        .collect();

    for len in 0..=pristine.len() {
        let case = root.join(format!("cut-{len}"));
        let wal = case.join("wal");
        let advice = case.join("advice");
        fs::create_dir_all(&wal).unwrap();
        fs::write(wal.join("t0.wal"), &pristine[..len]).unwrap();

        let mut ropts = opts(&advice, &wal);
        ropts.wal.recover = true;
        let mut s = Service::new(ropts).unwrap();
        let report = s.recover();
        let _ = s.drain();

        let got: Vec<String> = advice_file(&advice, "t0")
            .lines()
            .filter(|l| l.starts_with("ADV"))
            .map(str::to_string)
            .collect();
        assert!(
            got.len() <= want.len() && got[..] == want[..got.len()],
            "cut at {len}: advice is not a clean prefix"
        );
        if len == pristine.len() {
            assert_eq!(report.replayed, 1);
            assert_eq!(got.len(), want.len(), "full file must replay fully");
        }
        let _ = fs::remove_dir_all(&case);
    }
    let _ = fs::remove_dir_all(&root);
}

/// Hand-crafted sequence violations — event before OPEN, duplicate OPEN,
/// records after CLOSE — are typed quarantines, and the damaged name
/// stays quarantined for the life of the service.
#[test]
fn sequence_violations_quarantine_with_typed_errors() {
    let spec = TenantSpec::from_opts(&[], &TenantDefaults::default()).unwrap();
    let open = WalRecord::Open { spec, base: false };
    let cases: Vec<(&str, Vec<WalRecord>)> = vec![
        ("ev-before-open", vec![WalRecord::Event(3), open.clone()]),
        ("double-open", vec![open.clone(), WalRecord::Event(3), open.clone()]),
        (
            "after-close",
            vec![open.clone(), WalRecord::Event(3), WalRecord::Close, WalRecord::Event(4)],
        ),
    ];
    for (tag, records) in cases {
        let root = tmp_dir(&format!("seq-{tag}"));
        let wal = root.join("wal");
        fs::create_dir_all(&wal).unwrap();
        let mut log = AppendLog::create(&wal.join("bad.wal")).unwrap();
        for r in &records {
            log.append(&r.encode()).unwrap();
        }
        log.sync().unwrap();
        drop(log);

        let mut ropts = opts(&root.join("advice"), &wal);
        ropts.wal.recover = true;
        let mut s = Service::new(ropts).unwrap();
        let report = s.recover();
        assert_eq!(report.quarantined, 1, "{tag} must quarantine");
        assert_eq!(report.errors.len(), 1, "{tag}");
        assert_eq!(report.errors[0].0, "bad", "{tag}");

        // The name is poisoned: a fresh OPEN is refused, the service serves on.
        let responses = s.process_batch(&[
            (0, "OPEN bad".to_string()),
            (0, "OPEN good".to_string()),
            (0, "EV good 7".to_string()),
        ]);
        let lines: Vec<&str> = responses.iter().map(|(_, l)| l.as_str()).collect();
        assert!(
            lines.iter().any(|l| l.starts_with("REJECT bad") && l.contains("quarantined")),
            "{tag}: {lines:?}"
        );
        assert!(lines.iter().any(|l| l.starts_with("OK open good")), "{tag}: {lines:?}");
        let _ = s.drain();
        let _ = fs::remove_dir_all(&root);
    }
}

/// Injected append and sync faults (the `prefetch-disk` durability fault
/// plan driving `prefetch-wal`'s fault hooks) degrade only the victim's
/// WAL; the victim and its siblings keep serving advice.
#[test]
fn injected_durability_faults_degrade_only_the_victim() {
    for (tag, plan) in [
        (
            "short-write",
            DurabilityFaultPlan {
                seed: 11,
                short_write_rate: 1.0,
                ..DurabilityFaultPlan::disabled()
            },
        ),
        (
            "fsync-error",
            DurabilityFaultPlan {
                seed: 12,
                fsync_error_rate: 1.0,
                ..DurabilityFaultPlan::disabled()
            },
        ),
    ] {
        let root = tmp_dir(&format!("inject-{tag}"));
        let mut o = opts(&root.join("advice"), &root.join("wal"));
        o.echo_advice = true;
        let mut s = Service::new(o).unwrap();
        feed(&mut s, &script(2, 5), 16);
        assert!(s.inject_wal_faults("t0", Box::new(plan.injector(0))), "{tag}: no log to arm");

        let more: Vec<String> =
            (0..6).flat_map(|e| [format!("EV t0 {e}"), format!("EV t1 {e}")]).collect();
        let tagged: Vec<(u64, String)> = more.iter().map(|l| (0, l.clone())).collect();
        let responses = s.process_batch(&tagged);
        let adv =
            |t: &str| responses.iter().filter(|(_, l)| l.starts_with(&format!("ADV {t}"))).count();
        // Both tenants served every event, fault or not.
        assert_eq!(adv("t0"), 6, "{tag}");
        assert_eq!(adv("t1"), 6, "{tag}");

        let finals = s.drain();
        let final_of = |t: &str| {
            finals
                .iter()
                .find(|l| l.starts_with(&format!("FINAL {t}")))
                .unwrap_or_else(|| panic!("{tag}: no FINAL for {t}"))
        };
        assert!(final_of("t0").contains(" wal=degraded "), "{tag}: {}", final_of("t0"));
        assert!(final_of("t1").contains(" wal=on "), "{tag}: {}", final_of("t1"));
        let bye = finals.iter().find(|l| l.starts_with("BYE")).unwrap();
        assert!(bye.contains(" wal=on"), "{tag}: {bye}");
        assert!(bye.contains(" wal_degraded=1"), "{tag}: {bye}");
        let _ = fs::remove_dir_all(&root);
    }
}

/// An unusable WAL directory degrades the whole service to in-memory-only
/// — a warning and a flag, not a refused start, and serving is unaffected.
#[test]
fn unusable_wal_dir_degrades_to_memory_only() {
    let root = tmp_dir("nodir");
    let file = root.join("blocker");
    fs::write(&file, b"i am a file, not a directory").unwrap();
    let mut o = opts(&root.join("advice"), &file.join("sub"));
    o.echo_advice = true;
    let mut s = Service::new(o).expect("degraded start must succeed");
    let responses = s.process_batch(&[
        (0, "OPEN t0".to_string()),
        (0, "EV t0 1".to_string()),
        (0, "EV t0 2".to_string()),
    ]);
    assert!(responses.iter().filter(|(_, l)| l.starts_with("ADV t0")).count() == 2);
    let finals = s.drain();
    let final_t0 = finals.iter().find(|l| l.starts_with("FINAL t0")).unwrap();
    assert!(final_t0.contains(" wal=off "), "{final_t0}");
    let bye = finals.iter().find(|l| l.starts_with("BYE")).unwrap();
    assert!(bye.contains(" wal=degraded"), "{bye}");
    let _ = fs::remove_dir_all(&root);
}

/// CLOSE seals and retires the tenant's durability artifacts: the log is
/// deleted after the close record is durable, and recovery over the
/// directory finds nothing to restore.
#[test]
fn close_retires_the_log_and_recovery_finds_nothing() {
    let root = tmp_dir("close");
    let wal = root.join("wal");
    let mut s = Service::new(opts(&root.join("advice"), &wal)).unwrap();
    let mut lines = script(1, 8);
    lines.push("CLOSE t0".to_string());
    feed(&mut s, &lines, 16);
    assert!(!wal.join("t0.wal").exists(), "CLOSE must retire the log");
    let _ = s.drain();

    let mut ropts = opts(&root.join("advice2"), &wal);
    ropts.wal.recover = true;
    let mut s = Service::new(ropts).unwrap();
    let report = s.recover();
    assert_eq!(
        (report.replayed, report.degraded, report.closed, report.quarantined),
        (0, 0, 0, 0),
        "retired tenant must leave no recovery work"
    );
    let _ = s.drain();
    let _ = fs::remove_dir_all(&root);
}

/// Over the replay cap, recovery degrades honestly: counters come back
/// from the log (FINAL events match), state warm-starts from the latest
/// checkpoint, and the marker says `recovered=degraded`.
#[test]
fn over_cap_recovery_degrades_from_checkpoint() {
    let root = tmp_dir("cap");
    let wal = root.join("wal");
    let mut o = opts(&root.join("advice"), &wal);
    o.wal.checkpoint_every = 5;
    {
        let mut s = Service::new(o.clone()).unwrap();
        feed(&mut s, &script(1, 20), 4);
        // Crash: no drain.
    }
    assert!(wal.join("t0.ckpt.pftree").exists(), "checkpoints must have been written");

    let mut ropts = o;
    ropts.wal.recover = true;
    ropts.wal.recover_cap_events = 3;
    let mut s = Service::new(ropts).unwrap();
    let report = s.recover();
    assert_eq!(report.degraded, 1, "{:?}", report.errors);
    assert_eq!(report.replayed, 0);
    let finals = s.drain();
    let final_t0 = finals.iter().find(|l| l.starts_with("FINAL t0")).unwrap();
    assert!(
        final_t0.contains(" events=20 "),
        "counters must survive degraded recovery: {final_t0}"
    );
    assert!(final_t0.contains(" recovered=degraded "), "{final_t0}");
    let _ = fs::remove_dir_all(&root);
}
