//! Live-observability tests (PR 9): the sharded metrics registry's
//! determinism contract, the frozen `pfmetrics/v1` / Prometheus schemas,
//! and the service surface (`METRICS`/`HEALTH` verbs, `queue_hwm=` /
//! `rejects=` response fields, flight-recorder `TRACE` dumps, and
//! thread-count-invariant snapshot files).

use prefetch_serve::loadgen::{generate, Fate, LoadgenOpts};
use prefetch_serve::{ServeOpts, Service};
use prefetch_telemetry::registry::MetricsRegistry;
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::sync::Mutex;

/// `prefetch_pool::set_threads` is a process-global knob; tests that
/// touch it serialize here so they cannot fight over it.
static KNOB: Mutex<()> = Mutex::new(());

fn lock_knob() -> std::sync::MutexGuard<'static, ()> {
    KNOB.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pfserve-observe-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Feed a script through a fresh service in `chunk`-line batches and
/// return every response line plus the drain report.
fn run_script(lines: &[String], opts: ServeOpts, chunk: usize) -> (Vec<String>, Vec<String>) {
    let mut service = Service::new(opts).expect("service init");
    let mut responses = Vec::new();
    for batch in lines.chunks(chunk) {
        let tagged: Vec<(u64, String)> = batch.iter().map(|l| (0, l.clone())).collect();
        for (_, line) in service.process_batch(&tagged) {
            responses.push(line);
        }
        if service.shutdown_requested() {
            break;
        }
    }
    let finals = service.drain();
    (responses, finals)
}

fn feed(service: &mut Service, lines: &[&str]) -> Vec<String> {
    let tagged: Vec<(u64, String)> = lines.iter().map(|l| (0, l.to_string())).collect();
    service.process_batch(&tagged).into_iter().map(|(_, l)| l).collect()
}

// ---------------------------------------------------------------------------
// Registry determinism: order- and thread-count-independent merges.
// ---------------------------------------------------------------------------

const TENANTS: usize = 6;

fn apply(reg: &MetricsRegistry, tenant: &str, op: u8, val: u64) {
    reg.update(tenant, |m| match op % 4 {
        0 => m.add("events", val % 1000),
        1 => m.record("stall_us", val % 100_000),
        2 => m.gauge_max("queue_hwm", val % 512),
        _ => m.add("prefetches", val % 64),
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The registry contract behind the any-`--threads` bit-identity
    /// guarantee: applying each tenant's operation sequence in tenant
    /// order — no matter which thread applies it, how tenants interleave,
    /// or how many shards the registry has — produces byte-identical
    /// JSONL and Prometheus renderings.
    #[test]
    fn sharded_merge_is_order_and_thread_count_independent(
        ops in proptest::collection::vec((0u8..TENANTS as u8, 0u8..4, 0u64..1_000_000), 10..200),
    ) {
        let tenants: Vec<String> = (0..TENANTS).map(|i| format!("t{i:02}")).collect();

        // Reference: one shard, sequential application in generated order.
        let reference = MetricsRegistry::new(1);
        for (t, op, val) in &ops {
            apply(&reference, &tenants[*t as usize % TENANTS], *op, *val);
        }
        let ref_snap = reference.snapshot();
        let (ref_jsonl, ref_prom) = (ref_snap.render_jsonl(), ref_snap.render_prometheus());

        for (shards, workers) in [(64, 1), (64, 4), (129, 3)] {
            // Partition tenants over worker threads; each worker applies
            // its tenants' ops in tenant order, racing the other workers.
            let reg = MetricsRegistry::new(shards);
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let reg = &reg;
                    let ops = &ops;
                    let tenants = &tenants;
                    scope.spawn(move || {
                        for (t, op, val) in ops {
                            let idx = *t as usize % TENANTS;
                            if idx % workers == w {
                                apply(reg, &tenants[idx], *op, *val);
                            }
                        }
                    });
                }
            });
            let snap = reg.snapshot();
            prop_assert_eq!(&snap.render_jsonl(), &ref_jsonl);
            prop_assert_eq!(&snap.render_prometheus(), &ref_prom);
        }
    }
}

// ---------------------------------------------------------------------------
// Golden schema files: the exact bytes of both exposition formats.
// ---------------------------------------------------------------------------

/// A small registry exercising every metric type in both scopes.
fn golden_registry() -> MetricsRegistry {
    let reg = MetricsRegistry::new(8);
    reg.update("", |m| {
        m.gauge_set("tenants_live", 2);
        m.add("sheds", 1);
    });
    reg.update("alpha", |m| {
        m.add("events", 42);
        m.fgauge_set("cal_benefit_err", 0.25);
        m.gauge_max("queue_hwm", 7);
        m.record("stall_us", 900);
        m.record("stall_us", 15000);
        m.record("stall_us", 15000);
    });
    reg.update("beta", |m| m.add("events", 7));
    reg
}

#[test]
fn jsonl_schema_matches_golden_file() {
    assert_eq!(
        golden_registry().snapshot().render_jsonl(),
        include_str!("golden/metrics.jsonl"),
        "pfmetrics/v1 JSONL schema drifted; update tests/golden/metrics.jsonl deliberately"
    );
}

#[test]
fn prometheus_schema_matches_golden_file() {
    assert_eq!(
        golden_registry().snapshot().render_prometheus(),
        include_str!("golden/metrics.prom"),
        "Prometheus exposition drifted; update tests/golden/metrics.prom deliberately"
    );
}

// ---------------------------------------------------------------------------
// Service surface.
// ---------------------------------------------------------------------------

fn metrics_opts(dir: &std::path::Path, every: u64, ring: usize) -> ServeOpts {
    ServeOpts {
        echo_advice: true,
        metrics_out: Some(dir.join("metrics.jsonl")),
        metrics_every: every,
        trace_ring: ring,
        ..ServeOpts::default()
    }
}

#[test]
fn metrics_and_health_verbs_answer_end_to_end() {
    let dir = tmp_dir("verbs");
    let mut service = Service::new(metrics_opts(&dir, 0, 8)).unwrap();
    let mut out = feed(&mut service, &["OPEN t1", "EV t1 1", "EV t1 2", "EV t1 1", "EV t1 2"]);
    out.extend(feed(&mut service, &["METRICS", "HEALTH"]));

    let metric_lines: Vec<&String> = out.iter().filter(|l| l.starts_with("METRIC ")).collect();
    assert!(!metric_lines.is_empty(), "METRICS returned no exposition lines:\n{out:?}");
    assert!(
        metric_lines.iter().any(|l| l.contains("events{tenant=\"t1\"} 4")),
        "per-tenant event counter missing: {metric_lines:?}"
    );
    assert!(
        metric_lines.iter().any(|l| l.starts_with("METRIC # TYPE ")),
        "exposition must carry # TYPE headers"
    );
    assert!(
        metric_lines.iter().any(|l| l.contains("cal_benefit_err{tenant=\"t1\"}")),
        "per-tenant calibration gauge missing: {metric_lines:?}"
    );
    let trailer = out.iter().find(|l| l.starts_with("OK metrics lines=")).unwrap();
    assert_eq!(
        trailer.strip_prefix("OK metrics lines=").unwrap().parse::<usize>().unwrap(),
        metric_lines.len()
    );

    let health = out.iter().find(|l| l.starts_with("HEALTH ")).unwrap();
    assert!(health.starts_with("HEALTH status=ok tenants=1 "), "unexpected: {health}");
    assert!(health.contains(" metrics=on "), "unexpected: {health}");
    assert!(health.ends_with(" trace_ring=8"), "unexpected: {health}");

    // Without --metrics-out the verb answers but reports itself disabled.
    let mut plain = Service::new(ServeOpts::default()).unwrap();
    let out = feed(&mut plain, &["METRICS", "HEALTH"]);
    assert!(out.contains(&"OK metrics lines=0 enabled=false".to_string()));
    assert!(out.iter().any(|l| l.contains(" metrics=off ")));
}

#[test]
fn stats_and_final_carry_queue_hwm_and_reject_tally() {
    let mut service =
        Service::new(ServeOpts { echo_advice: true, ..ServeOpts::default() }).unwrap();
    let out =
        feed(&mut service, &["OPEN t1", "EV t1 1", "EV t1 2", "EV t1 3", "OPEN t1", "STATS t1"]);
    let stats = out.iter().find(|l| l.starts_with("STATS t1 ")).unwrap();
    assert!(stats.contains(" queue_hwm=3 "), "three queued events in one batch: {stats}");
    assert!(
        stats.contains(
            " rejects=tenant-limit:0,memory-budget:0,quarantined:0,unknown-tenant:0,\
             duplicate:1,bad-config:0"
        ),
        "duplicate OPEN must be tallied: {stats}"
    );
    assert!(
        stats.contains(" kernel=") && stats.split(" kernel=").nth(1).is_some_and(|k| !k.is_empty()),
        "STATS must report the active cost-benefit kernel path: {stats}"
    );
    let finals = service.drain();
    let fin = finals.iter().find(|l| l.starts_with("FINAL t1 ")).unwrap();
    assert!(fin.contains(" queue_hwm=3 "), "drain FINAL keeps the high-water mark: {fin}");
    assert!(fin.contains(" rejects="), "drain FINAL carries the tally: {fin}");
}

#[test]
fn panic_dumps_flight_recorder_trace() {
    let dir = tmp_dir("trace");
    let mut service = Service::new(metrics_opts(&dir, 0, 16)).unwrap();
    let mut out = feed(&mut service, &["OPEN t1", "EV t1 1", "EV t1 2"]);
    out.extend(feed(&mut service, &["PANIC t1", "EV t1 3"]));

    assert!(
        out.iter().any(|l| l.starts_with("PANIC t1 quarantined")),
        "panic must quarantine: {out:?}"
    );
    let trace: Vec<&String> = out.iter().filter(|l| l.starts_with("TRACE t1 ")).collect();
    assert!(!trace.is_empty(), "quarantine must dump the flight ring: {out:?}");
    // Ring contents are sequence-stamped lifecycle stages, newest last.
    for stage in ["admission", "queue", "dispatch", "decision", "response"] {
        assert!(
            trace.iter().any(|l| l.contains(&format!(" {stage} "))),
            "missing {stage} stage in {trace:?}"
        );
    }
    // Stamps are sequence numbers, not wall clock: strictly increasing
    // small integers in field 3.
    let seqs: Vec<u64> =
        trace.iter().map(|l| l.split_ascii_whitespace().nth(2).unwrap().parse().unwrap()).collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "non-monotonic stamps: {seqs:?}");

    // Without --trace-ring, no TRACE lines appear.
    let mut plain = Service::new(ServeOpts::default()).unwrap();
    let out = feed(&mut plain, &["OPEN t1", "EV t1 1", "PANIC t1", "EV t1 2"]);
    assert!(out.iter().all(|l| !l.starts_with("TRACE ")), "unexpected trace: {out:?}");
}

#[test]
fn metrics_snapshots_are_identical_across_thread_counts() {
    let _knob = lock_knob();
    let gen = generate(&LoadgenOpts {
        tenants: 60,
        events_per_tenant: 24,
        slice: 4,
        phase_len: 5,
        seed: 21,
        chaos: true,
        shutdown: false,
    });
    assert!(gen.manifest.iter().any(|(_, f)| *f == Fate::Panicked));

    let mut runs = Vec::new();
    for threads in [1usize, 4] {
        let dir = tmp_dir(&format!("threads{threads}"));
        prefetch_pool::set_threads(threads);
        let (responses, finals) = run_script(&gen.lines, metrics_opts(&dir, 64, 8), 32);
        prefetch_pool::set_threads(0);
        let snapshot_bytes = fs::read(dir.join("metrics.jsonl")).unwrap();
        let traces: Vec<String> =
            responses.iter().filter(|l| l.starts_with("TRACE ")).cloned().collect();
        runs.push((snapshot_bytes, traces, finals));
    }
    assert!(!runs[0].1.is_empty(), "chaos run should dump flight traces");
    assert!(
        String::from_utf8_lossy(&runs[0].0).contains("pfmetrics-snap/v1"),
        "snapshot file must carry its schema header"
    );
    assert_eq!(runs[0].0, runs[1].0, "metrics snapshot files differ across thread counts");
    assert_eq!(runs[0].1, runs[1].1, "flight-recorder dumps differ across thread counts");
    assert_eq!(runs[0].2, runs[1].2, "drain reports differ across thread counts");
}

// ---------------------------------------------------------------------------
// Binary end-to-end: the CI job's contract in miniature.
// ---------------------------------------------------------------------------

#[test]
fn pfserve_binary_writes_identical_snapshots_at_any_thread_count() {
    use std::io::Write;
    use std::process::{Command, Stdio};

    let gen = generate(&LoadgenOpts {
        tenants: 40,
        events_per_tenant: 16,
        slice: 4,
        phase_len: 5,
        seed: 33,
        chaos: true,
        shutdown: true,
    });
    let script = gen.lines.join("\n") + "\n";

    let mut outputs = Vec::new();
    for threads in ["1", "4"] {
        let dir = tmp_dir(&format!("bin{threads}"));
        let metrics = dir.join("metrics.jsonl");
        let mut child = Command::new(env!("CARGO_BIN_EXE_pfserve"))
            .args([
                "--threads",
                threads,
                "--batch",
                "32",
                "--metrics-out",
                metrics.to_str().unwrap(),
                "--metrics-every",
                "128",
                "--trace-ring",
                "8",
                "--no-echo-advice",
                "--quiet",
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn pfserve");
        child.stdin.take().unwrap().write_all(script.as_bytes()).unwrap();
        let out = child.wait_with_output().unwrap();
        assert!(out.status.success(), "pfserve exited with {:?}", out.status);
        outputs.push((fs::read(&metrics).unwrap(), out.stdout));
    }
    assert!(!outputs[0].0.is_empty(), "snapshot file must not be empty");
    assert_eq!(
        outputs[0].0, outputs[1].0,
        "--threads 1 vs 4 must write byte-identical metrics snapshots"
    );
    assert_eq!(outputs[0].1, outputs[1].1, "--threads 1 vs 4 must write byte-identical responses");
}
