//! End-to-end service tests: the robustness contract of `pfserve`.
//!
//! The load-bearing one is the determinism test: ≥1000 concurrent
//! chaos-mode tenants (fault injection + forced panics) processed at
//! different worker counts must produce byte-identical per-tenant advice
//! streams, and the surviving tenants must match a sequential no-chaos
//! baseline. That is the cross-tenant-isolation guarantee the CI chaos
//! job re-checks from the outside.

use prefetch_serve::loadgen::{generate, Fate, LoadgenOpts};
use prefetch_serve::{AdmissionConfig, ServeOpts, Service};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// `prefetch_pool::set_threads` is a process-global knob; tests that
/// touch it serialize here so they cannot fight over it.
static KNOB: Mutex<()> = Mutex::new(());

fn lock_knob() -> std::sync::MutexGuard<'static, ()> {
    KNOB.lock().unwrap_or_else(|e| e.into_inner())
}

/// Feed a script through a fresh service in `chunk`-line batches and
/// return every response line plus the drained service.
fn run_script(lines: &[String], opts: ServeOpts, chunk: usize) -> (Vec<String>, Vec<String>) {
    let mut service = Service::new(opts).expect("service init");
    let mut responses = Vec::new();
    for batch in lines.chunks(chunk) {
        let tagged: Vec<(u64, String)> = batch.iter().map(|l| (0, l.clone())).collect();
        for (_, line) in service.process_batch(&tagged) {
            responses.push(line);
        }
        if service.shutdown_requested() {
            break;
        }
    }
    let finals = service.drain();
    (responses, finals)
}

/// Group `ADV` response lines by tenant, preserving per-tenant order.
fn advice_by_tenant(responses: &[String]) -> BTreeMap<String, Vec<String>> {
    let mut by_tenant: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for line in responses {
        if let Some(rest) = line.strip_prefix("ADV ") {
            let tenant = rest.split_ascii_whitespace().next().unwrap().to_string();
            by_tenant.entry(tenant).or_default().push(line.clone());
        }
    }
    by_tenant
}

fn open(tenant: &str) -> (u64, String) {
    (0, format!("OPEN {tenant}"))
}

fn ev(tenant: &str, block: u64) -> (u64, String) {
    (0, format!("EV {tenant} {block}"))
}

#[test]
fn a_thousand_chaos_tenants_are_deterministic_at_any_worker_count() {
    let _knob = lock_knob();
    let opts = LoadgenOpts {
        tenants: 1040,
        events_per_tenant: 12,
        slice: 4,
        phase_len: 5,
        seed: 7,
        chaos: true,
        shutdown: true,
    };
    let chaos = generate(&opts);
    let baseline = generate(&LoadgenOpts { chaos: false, ..opts });
    assert!(chaos.manifest.iter().filter(|(_, f)| *f == Fate::Panicked).count() >= 50);
    assert!(chaos.manifest.iter().filter(|(_, f)| *f == Fate::Faulty).count() >= 100);

    let serve_opts = ServeOpts { echo_advice: true, ..ServeOpts::default() };

    prefetch_pool::set_threads(1);
    let (seq_chaos, seq_finals) = run_script(&chaos.lines, serve_opts.clone(), 64);
    let (seq_base, _) = run_script(&baseline.lines, serve_opts.clone(), 64);
    prefetch_pool::set_threads(4);
    let (par_chaos, par_finals) = run_script(&chaos.lines, serve_opts.clone(), 64);
    prefetch_pool::set_threads(0);

    // 1. Any worker count yields byte-identical per-tenant advice.
    let seq_advice = advice_by_tenant(&seq_chaos);
    let par_advice = advice_by_tenant(&par_chaos);
    assert_eq!(seq_advice, par_advice, "worker count must not change any tenant's advice");

    // 2. No cross-tenant interference: every tenant that was clean under
    //    chaos matches the sequential no-chaos baseline byte-for-byte.
    let base_advice = advice_by_tenant(&seq_base);
    let mut clean = 0;
    for (tenant, fate) in &chaos.manifest {
        if *fate != Fate::Clean {
            continue;
        }
        clean += 1;
        assert_eq!(
            seq_advice.get(tenant),
            base_advice.get(tenant),
            "chaos around clean tenant {tenant} leaked into its advice"
        );
    }
    assert!(clean >= 800, "need a meaningful clean population, got {clean}");

    // 3. Forced panics became quarantines with typed reports, and the
    //    drain covers every quarantined tenant exactly once.
    let panicked: Vec<&str> = chaos
        .manifest
        .iter()
        .filter(|(_, f)| *f == Fate::Panicked)
        .map(|(t, _)| t.as_str())
        .collect();
    for tenant in &panicked {
        assert!(
            seq_chaos.iter().any(|l| l.starts_with(&format!("PANIC {tenant} quarantined"))),
            "{tenant} must report its quarantine"
        );
        assert!(
            seq_finals
                .iter()
                .any(|l| l.starts_with(&format!("FINAL {tenant} "))
                    && l.contains("quarantined=true")),
            "{tenant} must appear quarantined in the drain"
        );
    }
    assert_eq!(seq_finals, par_finals, "drain reports must be deterministic too");
    assert!(seq_finals.last().unwrap().starts_with("BYE "));
}

#[test]
fn admission_rejections_are_typed() {
    let opts = ServeOpts {
        admission: AdmissionConfig { max_tenants: 2, memory_budget_bytes: None },
        ..ServeOpts::default()
    };
    let mut service = Service::new(opts).unwrap();
    let out = service.process_batch(&[open("a"), open("b"), open("c")]);
    let lines: Vec<&str> = out.iter().map(|(_, l)| l.as_str()).collect();
    assert_eq!(lines, vec!["OK open a", "OK open b", "REJECT c tenant-limit limit=2"]);

    // Closing frees the slot for a new admission.
    let out = service.process_batch(&[(0, "CLOSE a".into()), open("c")]);
    assert!(out[0].1.starts_with("FINAL a "));
    assert_eq!(out[1].1, "OK open c");

    // A memory budget too small for even one tenant rejects with the
    // requested/available accounting.
    let tight = ServeOpts {
        admission: AdmissionConfig { max_tenants: 100, memory_budget_bytes: Some(1024) },
        ..ServeOpts::default()
    };
    let mut service = Service::new(tight).unwrap();
    let out = service.process_batch(&[open("big")]);
    assert!(out[0].1.starts_with("REJECT big memory-budget requested="), "got {:?}", out[0].1);

    // Duplicate opens and unknown tenants are typed, not fatal.
    let mut service = Service::new(ServeOpts::default()).unwrap();
    let out = service.process_batch(&[open("a"), open("a"), ev("ghost", 1)]);
    assert_eq!(out[1].1, "REJECT a duplicate");
    assert_eq!(out[2].1, "REJECT ghost unknown-tenant");

    // Bad OPEN options are typed config rejections.
    let out = service.process_batch(&[(0, "OPEN weird cache=0".into())]);
    assert!(out[0].1.starts_with("REJECT weird bad-config"), "got {:?}", out[0].1);
}

#[test]
fn overload_sheds_with_backpressure_responses() {
    let opts = ServeOpts { queue_cap: 4, ..ServeOpts::default() };
    let mut service = Service::new(opts).unwrap();
    let mut batch = vec![open("t")];
    for b in 0..10u64 {
        batch.push(ev("t", b));
    }
    let out = service.process_batch(&batch);
    let sheds = out.iter().filter(|(_, l)| l.starts_with("SHED t queue-full")).count();
    let advs = out.iter().filter(|(_, l)| l.starts_with("ADV t ")).count();
    assert_eq!(sheds, 6);
    assert_eq!(advs, 4);
    assert_eq!(service.stats.sheds, 6);

    // The tenant survives overload; its report counts the shed events.
    let out = service.process_batch(&[(0, "STATS t".into())]);
    assert!(out[0].1.contains("events=4") && out[0].1.contains("shed=6"), "got {:?}", out[0].1);
}

#[test]
fn malformed_lines_are_skipped_never_fatal() {
    let mut service = Service::new(ServeOpts::default()).unwrap();
    let out = service.process_batch(&[
        open("t"),
        (0, "EV t not-a-number".into()),
        (0, "FROB t 1".into()),
        (0, "EV t".into()),
        (0, "# a comment".into()),
        (0, "".into()),
        ev("t", 3),
    ]);
    let errs = out.iter().filter(|(_, l)| l.starts_with("ERR parse ")).count();
    assert_eq!(errs, 3);
    assert_eq!(service.stats.parse_errors, 3);
    assert!(out.last().unwrap().1.starts_with("ADV t 0 "));

    // Attributable garbage is charged to the tenant's skip counter.
    let out = service.process_batch(&[(0, "STATS t".into())]);
    assert!(out[0].1.contains("skipped=2"), "got {:?}", out[0].1);
}

#[test]
fn a_panicking_tenant_is_quarantined_and_never_resurrected() {
    let mut service = Service::new(ServeOpts::default()).unwrap();
    let mut control = Service::new(ServeOpts::default()).unwrap();

    let blocks = [5u64, 6, 7, 5, 6, 7, 5, 6];
    let mut batch = vec![open("victim"), open("bystander")];
    for &b in &blocks {
        batch.push(ev("victim", b));
        batch.push(ev("bystander", b));
    }
    // Arm the chaos hook mid-stream, then keep sending events.
    batch.push((0, "PANIC victim".into()));
    batch.push(ev("victim", 9));
    batch.push(ev("victim", 10));
    batch.push(ev("bystander", 9));
    let out = service.process_batch(&batch);
    let lines: Vec<&str> = out.iter().map(|(_, l)| l.as_str()).collect();

    // The victim delivered its pre-panic advice, then one typed PANIC
    // report, then typed rejections for what was left in its queue.
    assert_eq!(lines.iter().filter(|l| l.starts_with("ADV victim ")).count(), blocks.len());
    assert_eq!(lines.iter().filter(|l| l.starts_with("PANIC victim quarantined err=")).count(), 1);
    assert!(lines.contains(&"REJECT victim quarantined"));
    assert_eq!(service.stats.quarantined, 1);
    let first_batch: Vec<String> = out.iter().map(|(_, l)| l.clone()).collect();

    // Never silently resurrected: events and re-opens stay refused.
    let out = service.process_batch(&[ev("victim", 1), open("victim"), (0, "STATS victim".into())]);
    for (_, line) in &out {
        assert_eq!(line, "REJECT victim quarantined");
    }

    // The bystander's advice is byte-identical to a run where the victim
    // never existed.
    let mut solo = vec![open("bystander")];
    for &b in &blocks {
        solo.push(ev("bystander", b));
    }
    solo.push(ev("bystander", 9));
    let control_out = control.process_batch(&solo);
    let seen = advice_by_tenant(&first_batch);
    let want = advice_by_tenant(&control_out.iter().map(|(_, l)| l.clone()).collect::<Vec<_>>());
    assert_eq!(seen["bystander"], want["bystander"]);

    // The drain reports both: the survivor normally, the victim with its
    // retained counters and the quarantine flag.
    let finals = service.drain();
    assert!(finals
        .iter()
        .any(|l| l.starts_with("FINAL bystander ") && l.contains("quarantined=false")));
    let victim_final = finals
        .iter()
        .find(|l| l.starts_with("FINAL victim "))
        .expect("quarantined tenant must still be drained");
    assert!(victim_final.contains("quarantined=true"), "got {victim_final:?}");
    assert!(victim_final.contains(&format!("events={}", blocks.len())));
    assert!(finals.last().unwrap().starts_with("BYE "));
}

#[test]
fn shutdown_drains_with_complete_reports() {
    let mut service = Service::new(ServeOpts::default()).unwrap();
    let out = service.process_batch(&[
        open("a"),
        open("b"),
        ev("a", 1),
        ev("b", 2),
        (0, "SHUTDOWN".into()),
    ]);
    assert!(service.shutdown_requested());
    // SHUTDOWN flushes queued events before acknowledging.
    let lines: Vec<&str> = out.iter().map(|(_, l)| l.as_str()).collect();
    let adv_a = lines.iter().position(|l| l.starts_with("ADV a ")).unwrap();
    let ok = lines.iter().position(|l| *l == "OK shutdown").unwrap();
    assert!(adv_a < ok, "advice must precede the shutdown ack");

    let finals = service.drain();
    assert_eq!(finals.iter().filter(|l| l.starts_with("FINAL ")).count(), 2);
    let bye = finals.last().unwrap();
    assert!(bye.starts_with("BYE tenants=2 events=2 "), "got {bye:?}");
}

#[test]
fn stats_and_close_observe_queued_events_in_order() {
    let mut service = Service::new(ServeOpts::default()).unwrap();
    // STATS after two queued events must already see them (the service
    // flushes the tenant's queue inline to keep request order).
    let out = service.process_batch(&[open("t"), ev("t", 1), ev("t", 2), (0, "STATS t".into())]);
    let stats = &out.iter().find(|(_, l)| l.starts_with("STATS t ")).unwrap().1;
    assert!(stats.contains("events=2"), "got {stats:?}");

    let out = service.process_batch(&[ev("t", 3), (0, "CLOSE t".into())]);
    let fin = &out.iter().find(|(_, l)| l.starts_with("FINAL t ")).unwrap().1;
    assert!(fin.contains("events=3"), "got {fin:?}");

    // Closed is not quarantined: the name can be reopened fresh.
    let out = service.process_batch(&[open("t"), ev("t", 4)]);
    assert_eq!(out[0].1, "OK open t");
    assert!(out[1].1.starts_with("ADV t 0 "), "reopened tenant restarts its sequence");
}

#[test]
fn advice_files_capture_per_tenant_streams() {
    let dir = std::env::temp_dir().join(format!("pfserve-advice-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = ServeOpts { advice_dir: Some(dir.clone()), ..ServeOpts::default() };
    let mut service = Service::new(opts).unwrap();
    let out = service.process_batch(&[open("t"), ev("t", 1), ev("t", 2), (0, "CLOSE t".into())]);
    let file = std::fs::read_to_string(dir.join("t.advice")).expect("advice file written");
    // The response FINAL carries service-appended observability fields
    // (queue_hwm=, rejects=) that deliberately stay out of the advice
    // file, so strip them before comparing.
    let mut expect: Vec<String> = out
        .iter()
        .filter(|(_, l)| l.starts_with("ADV t ") || l.starts_with("FINAL t "))
        .map(|(_, l)| match l.find(" queue_hwm=") {
            Some(i) => l[..i].to_string(),
            None => l.clone(),
        })
        .collect();
    expect.push(String::new());
    assert_eq!(
        file.split('\n').collect::<Vec<_>>(),
        expect.iter().map(String::as_str).collect::<Vec<_>>()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
