//! How much memory does the prefetch tree need? (Paper Section 9.3 /
//! Figure 13.) Sweeps the LRU node limit and reports the miss rate of the
//! `tree` policy relative to `no-prefetch` on the CAD workload.
//!
//! ```text
//! cargo run --release --example memory_budget [refs] [cache_blocks]
//! ```

use predictive_prefetch::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let refs: usize = args.next().map(|s| s.parse().expect("refs")).unwrap_or(150_000);
    let cache: usize = args.next().map(|s| s.parse().expect("cache blocks")).unwrap_or(1024);

    let trace = TraceKind::Cad.generate(refs, 9);
    let base =
        run_simulation(&trace, &SimConfig::new(cache, PolicySpec::NoPrefetch)).metrics.miss_rate();
    println!(
        "CAD workload, {refs} refs, {cache}-block cache; no-prefetch miss rate {:.2}%\n",
        100.0 * base
    );
    println!("{:>10} {:>11} {:>10} {:>16}", "node limit", "memory", "miss %", "relative to base");
    for limit in [512usize, 1024, 2048, 4096, 8192, 16384, 32768, 65536, usize::MAX] {
        let cfg = if limit == usize::MAX {
            SimConfig::new(cache, PolicySpec::Tree)
        } else {
            SimConfig::new(cache, PolicySpec::Tree).with_node_limit(limit)
        };
        let miss = run_simulation(&trace, &cfg).metrics.miss_rate();
        let label = if limit == usize::MAX { "unlimited".into() } else { format!("{limit}") };
        let mem = if limit == usize::MAX {
            "-".into()
        } else {
            // The paper budgets 40 bytes per node (Section 9.3).
            format!("{} KB", limit * 40 / 1024)
        };
        println!(
            "{label:>10} {mem:>11} {:>9.2}% {:>15.3}",
            100.0 * miss,
            if base > 0.0 { miss / base } else { f64::NAN },
        );
    }
    println!(
        "\nPaper finding: ~32K nodes (~1.25 MB) already achieve the unlimited tree's \
         performance."
    );
}
