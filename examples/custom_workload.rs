//! Bring your own workload: implement [`Workload`] for a custom access
//! pattern (here, a B-tree-like index probe mix), generate a trace, and
//! see which prefetching policy wins.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use predictive_prefetch::prelude::*;
use predictive_prefetch::trace::synth::{generate, Workload};
use rand::rngs::SmallRng;
use rand::Rng;

/// A toy database: point queries descend a 3-level "index" (root page →
/// inner page → leaf page) and then scan a few records. Index descents
/// repeat per key range, so a predictive prefetcher can learn
/// root→inner→leaf chains; the record scan is short-sequential.
struct IndexProbes {
    root_page: u64,
    inner_pages: u64,
    leaves_per_inner: u64,
    records_base: u64,
    hot_ranges: ZipfLike,
    state: ProbeState,
}

enum ProbeState {
    Root,
    Inner(u64),
    Leaf(u64),
    Scan { next: u64, remaining: u32 },
}

/// Small stand-in for a skewed range chooser.
struct ZipfLike {
    n: u64,
}

impl ZipfLike {
    fn pick(&self, rng: &mut SmallRng) -> u64 {
        // Squaring a uniform variate skews towards 0 — enough for a demo.
        let u: f64 = rng.gen();
        ((u * u) * self.n as f64) as u64
    }
}

impl Workload for IndexProbes {
    fn next_record(&mut self, rng: &mut SmallRng) -> TraceRecord {
        match self.state {
            ProbeState::Root => {
                let range = self.hot_ranges.pick(rng);
                self.state = ProbeState::Inner(range % self.inner_pages);
                TraceRecord::read(self.root_page)
            }
            ProbeState::Inner(i) => {
                let leaf =
                    i * self.leaves_per_inner + self.hot_ranges.pick(rng) % self.leaves_per_inner;
                self.state = ProbeState::Leaf(leaf);
                TraceRecord::read(1000 + i)
            }
            ProbeState::Leaf(l) => {
                self.state = ProbeState::Scan {
                    next: self.records_base + l * 16,
                    remaining: rng.gen_range(2..6),
                };
                TraceRecord::read(100_000 + l)
            }
            ProbeState::Scan { next, remaining } => {
                self.state = if remaining <= 1 {
                    ProbeState::Root
                } else {
                    ProbeState::Scan { next: next + 1, remaining: remaining - 1 }
                };
                TraceRecord::read(next)
            }
        }
    }
}

fn main() {
    let workload = IndexProbes {
        root_page: 1,
        inner_pages: 40,
        leaves_per_inner: 25,
        records_base: 1_000_000,
        hot_ranges: ZipfLike { n: 40 },
        state: ProbeState::Root,
    };
    let trace = generate(
        workload,
        120_000,
        3,
        TraceMeta {
            name: "index-probes".into(),
            description: "Custom workload: skewed B-tree index probes + record scans".into(),
            l1_cache_bytes: None,
            seed: None,
        },
    );
    let stats = TraceStats::compute(&trace);
    println!(
        "custom workload: {} refs, {} unique blocks, {:.1}% sequential\n",
        stats.refs,
        stats.unique_blocks,
        100.0 * stats.sequential_fraction
    );

    println!("{:<18} {:>9} {:>12}", "policy", "miss %", "pf hit %");
    for spec in
        [PolicySpec::NoPrefetch, PolicySpec::NextLimit, PolicySpec::Tree, PolicySpec::TreeNextLimit]
    {
        let m = run_simulation(&trace, &SimConfig::new(512, spec)).metrics;
        println!(
            "{:<18} {:>8.2}% {:>11.1}%",
            spec.name(),
            100.0 * m.miss_rate(),
            100.0 * m.prefetch_hit_rate()
        );
    }
}
