//! Constant-memory, paper-scale simulation via the streaming pipeline.
//!
//! The original cello trace has 3.5 M references; materializing a trace
//! that size costs ~80 MB before the simulator even starts. A
//! `TraceSource` streams records into the simulator as it consumes them,
//! so the run's memory footprint is the simulator state alone, however
//! long the trace.
//!
//! ```text
//! cargo run --release --example streaming_run [refs] [cache_blocks]
//! ```

use predictive_prefetch::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let refs: usize = args.next().map(|s| s.parse().expect("refs")).unwrap_or(500_000);
    let cache: usize = args.next().map(|s| s.parse().expect("cache")).unwrap_or(4096);

    println!("streaming {refs} cello references through a {cache}-block cache\n");
    for spec in [PolicySpec::NoPrefetch, PolicySpec::NextLimit, PolicySpec::TreeNextLimit] {
        let cfg = SimConfig::new(cache, spec);
        // A fresh generator per policy; records are drawn on demand and
        // never buffered (rewinding one source would work too).
        let mut source = TraceKind::Cello.stream(refs, 42);
        let r = run_source(&mut source, &cfg).expect("synthetic sources cannot fail");
        println!(
            "{:<16} miss {:>6.2}%   prefetch hit rate {:>6.2}%   {:>8.3} ms/ref",
            spec.name(),
            100.0 * r.metrics.miss_rate(),
            100.0 * r.metrics.prefetch_hit_rate(),
            r.metrics.elapsed_ms / r.metrics.refs.max(1) as f64,
        );
    }

    // The streamed run is bit-identical to materializing the same trace —
    // demonstrate on a size small enough to materialize comfortably.
    let check_refs = refs.min(50_000);
    let trace = TraceKind::Cello.generate(check_refs, 42);
    let cfg = SimConfig::new(cache, PolicySpec::TreeNextLimit);
    let batch = run_simulation(&trace, &cfg);
    let mut source = TraceKind::Cello.stream(check_refs, 42);
    let streamed = run_source(&mut source, &cfg).unwrap();
    assert_eq!(batch.metrics, streamed.metrics);
    println!("\nstreamed == materialized on {check_refs} refs (bit-identical metrics)");
}
