//! Beyond the paper: what happens to prefetching when disks are finite?
//!
//! The paper's model assumes infinitely many disks (Section 6.3), while
//! observing that its own tree prefetcher raised snake's disk traffic by
//! up to 180% (Figure 8). This example re-runs the headline policies
//! against striped arrays of 1-16 disks and shows where prefetch traffic
//! starts to queue behind demand fetches.
//!
//! ```text
//! cargo run --release --example disk_congestion [trace] [refs]
//! ```

use predictive_prefetch::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let kind: TraceKind = args
        .next()
        .map(|s| s.parse().expect("trace must be cello|snake|cad|sitar"))
        .unwrap_or(TraceKind::Snake);
    let refs: usize = args.next().map(|s| s.parse().expect("refs")).unwrap_or(100_000);

    let trace = kind.generate(refs, 77);
    println!("{kind} workload, {refs} refs, 1024-block cache, T_cpu = 5 ms (I/O-bound)\n");
    println!(
        "{:<18} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "policy", "disks", "miss %", "ms/ref", "queue ms/io", "disk util"
    );
    for spec in PolicySpec::HEADLINE {
        for disks in [1usize, 2, 4, 16, 0] {
            // I/O-bound regime: small T_cpu makes congestion visible.
            let mut cfg = SimConfig::new(1024, spec).with_t_cpu(5.0);
            if disks > 0 {
                cfg = cfg.with_disks(disks);
            }
            let m = run_simulation(&trace, &cfg).metrics;
            let queue_per_io =
                if m.disk_reads() > 0 { m.disk_queue_ms / m.disk_reads() as f64 } else { 0.0 };
            println!(
                "{:<18} {:>10} {:>11.2}% {:>12.3} {:>12.3} {:>11.1}%",
                spec.name(),
                if disks == 0 { "inf".into() } else { disks.to_string() },
                100.0 * m.miss_rate(),
                m.elapsed_ms / m.refs as f64,
                queue_per_io,
                100.0 * m.disk_mean_utilization,
            );
        }
        println!();
    }
    println!(
        "With one disk, the prefetchers' extra traffic queues behind demand fetches;\n\
         by ~4-16 disks the infinite-disk (paper-model) times are recovered."
    );
}
