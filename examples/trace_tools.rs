//! Generate, save, reload and characterize the synthetic traces — shows
//! the trace I/O formats and the statistics used to validate the
//! generators against the paper's Table 1.
//!
//! ```text
//! cargo run --release --example trace_tools [out_dir]
//! ```

use predictive_prefetch::prelude::*;
use predictive_prefetch::trace::io;
use predictive_prefetch::trace::stats::ReuseDistances;

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("prefetch-traces"));
    std::fs::create_dir_all(&out_dir).expect("create output dir");

    println!(
        "{:<8} {:>8} {:>9} {:>6} {:>8} {:>9} {:>10}",
        "trace", "refs", "unique", "seq%", "reuse%", "bin KB", "H(1024)"
    );
    for kind in TraceKind::ALL {
        let trace = kind.generate(50_000, 77);
        let stats = TraceStats::compute(&trace);

        // Save in the compact binary format, reload, verify.
        let path = out_dir.join(format!("{}.trc", kind.name()));
        io::save(&trace, &path).expect("save trace");
        let reloaded = io::load(&path).expect("load trace");
        assert_eq!(reloaded.records(), trace.records(), "binary round-trip");
        let bytes = std::fs::metadata(&path).expect("stat").len();

        // Offline LRU characterization: hit rate a 1024-block cache
        // would achieve (Mattson one-pass).
        let rd = ReuseDistances::compute(&trace);

        println!(
            "{:<8} {:>8} {:>9} {:>5.1}% {:>7.1}% {:>9} {:>9.1}%",
            kind.name(),
            stats.refs,
            stats.unique_blocks,
            100.0 * stats.sequential_fraction,
            100.0 * stats.reuse_fraction,
            bytes / 1024,
            100.0 * rd.hit_rate(1024),
        );
    }
    println!("\ntraces written to {}", out_dir.display());
    println!("(text format: save with a non-.trc extension)");
}
