//! Quickstart: simulate the four prefetching schemes of the paper's
//! headline comparison on one synthetic workload and print a summary.
//!
//! ```text
//! cargo run --release --example quickstart [trace] [cache_blocks] [refs]
//! ```
//!
//! Defaults: `cad 1024 100000`.

use predictive_prefetch::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let kind: TraceKind = args
        .next()
        .map(|s| s.parse().expect("trace must be cello|snake|cad|sitar"))
        .unwrap_or(TraceKind::Cad);
    let cache_blocks: usize =
        args.next().map(|s| s.parse().expect("cache size in blocks")).unwrap_or(1024);
    let refs: usize = args.next().map(|s| s.parse().expect("reference count")).unwrap_or(100_000);

    println!("workload: {kind} ({refs} references), cache: {cache_blocks} blocks");
    let trace = kind.generate(refs, 42);
    let stats = TraceStats::compute(&trace);
    println!(
        "trace: {} unique blocks, {:.1}% sequential transitions, {:.1}% reuse\n",
        stats.unique_blocks,
        100.0 * stats.sequential_fraction,
        100.0 * stats.reuse_fraction,
    );

    println!(
        "{:<18} {:>9} {:>12} {:>12} {:>14}",
        "policy", "miss %", "pf issued", "pf hit %", "disk reads"
    );
    let mut baseline = None;
    for spec in PolicySpec::HEADLINE {
        let result = run_simulation(&trace, &SimConfig::new(cache_blocks, spec));
        let m = &result.metrics;
        if spec == PolicySpec::NoPrefetch {
            baseline = Some(m.miss_rate());
        }
        println!(
            "{:<18} {:>8.2}% {:>12} {:>11.1}% {:>14}",
            spec.name(),
            100.0 * m.miss_rate(),
            m.prefetches_issued,
            100.0 * m.prefetch_hit_rate(),
            m.disk_reads(),
        );
    }
    if let Some(base) = baseline {
        let best = run_simulation(&trace, &SimConfig::new(cache_blocks, PolicySpec::TreeNextLimit));
        let reduction =
            if base > 0.0 { 100.0 * (base - best.metrics.miss_rate()) / base } else { 0.0 };
        println!("\ntree-next-limit reduces the miss rate by {reduction:.1}% vs no-prefetch");
    }
}
