//! The paper's motivating case for *predictive* (non-sequential)
//! prefetching: a CAD tool whose object references have no block
//! adjacency. One-block-lookahead is useless here; the prefetch tree
//! learns the traversals.
//!
//! This example walks through what the tree actually learns: it prints
//! prediction accuracy as training progresses, the most probable paths
//! under the current cursor, and the resulting cache behaviour.
//!
//! ```text
//! cargo run --release --example cad_workload
//! ```

use predictive_prefetch::prelude::*;

fn main() {
    let refs = 150_000;
    let trace = TraceKind::Cad.generate(refs, 7);
    println!("CAD-like workload: {} object references\n", trace.len());

    // 1. Train a bare prefetch tree and watch accuracy converge.
    println!("tree training (prediction accuracy over time):");
    let mut tree = PrefetchTree::new();
    let checkpoints = [1_000usize, 5_000, 20_000, 50_000, 100_000, 150_000];
    let mut predictable = 0u64;
    let mut seen = 0u64;
    let mut next_cp = 0;
    for r in trace.records() {
        if tree.record_access(r.block).predictable {
            predictable += 1;
        }
        seen += 1;
        if next_cp < checkpoints.len() && seen as usize == checkpoints[next_cp] {
            println!(
                "  after {:>7} refs: {:>5.1}% predictable, {:>7} tree nodes (~{} KB)",
                seen,
                100.0 * predictable as f64 / seen as f64,
                tree.node_count(),
                tree.approx_memory_bytes() / 1024,
            );
            next_cp += 1;
        }
    }

    // 2. Show the highest-probability paths below the cursor.
    println!("\nmost probable continuations from the current position:");
    let cands = tree.candidates_below(tree.cursor(), 3, 8);
    if cands.is_empty() {
        println!("  (cursor at a leaf — parse just reset)");
    }
    for c in cands {
        println!("  block {:>8}  p = {:<6.3} at distance {}", c.block, c.probability, c.depth);
    }

    // 3. Full simulation: next-limit does nothing here, the tree helps.
    println!("\ncache simulation (1024 blocks):");
    for spec in [PolicySpec::NoPrefetch, PolicySpec::NextLimit, PolicySpec::Tree] {
        let m = run_simulation(&trace, &SimConfig::new(1024, spec)).metrics;
        println!(
            "  {:<12} miss rate {:>5.1}%   prefetch-cache hit rate {:>5.1}%",
            spec.name(),
            100.0 * m.miss_rate(),
            100.0 * m.prefetch_hit_rate(),
        );
    }
    println!(
        "\nThe sequential prefetcher cannot help a workload with no block adjacency;\n\
         the probability tree can (paper Section 9.1, Figure 6 CAD panel)."
    );
}
