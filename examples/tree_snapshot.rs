//! Train a prefetch tree, snapshot it to disk, reload it, and keep
//! predicting — plus a Graphviz dump of what it learned. This is the
//! "warm start" workflow an OS would use across reboots (the paper's
//! Section 9.3 shows ~1.25 MB of tree captures a workload).
//!
//! ```text
//! cargo run --release --example tree_snapshot [out_dir]
//! ```

use predictive_prefetch::prelude::*;
use predictive_prefetch::tree::{read_tree, to_dot, write_tree};

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("prefetch-tree-snapshot"));
    std::fs::create_dir_all(&out_dir).expect("create output dir");

    // Day 1: train on the CAD workload.
    let day1 = TraceKind::Cad.generate(150_000, 5);
    let mut tree = PrefetchTree::new();
    for b in day1.blocks() {
        tree.record_access(b);
    }
    println!(
        "day 1: trained on {} refs → {} nodes (~{} KB), {:.1}% predictable",
        day1.len(),
        tree.node_count(),
        tree.approx_memory_bytes() / 1024,
        100.0 * tree.stats().prediction_accuracy(),
    );

    // Snapshot.
    let snap_path = out_dir.join("cad.pftree");
    let mut file = std::fs::File::create(&snap_path).expect("create snapshot");
    write_tree(&tree, &mut file).expect("write snapshot");
    let bytes = std::fs::metadata(&snap_path).unwrap().len();
    println!(
        "snapshot: {} ({} KB on disk — {:.1} bytes/node)",
        snap_path.display(),
        bytes / 1024,
        bytes as f64 / tree.node_count() as f64,
    );

    // Graphviz of the hottest paths under the root.
    let dot_path = out_dir.join("cad-top.dot");
    let dot = to_dot(&tree, tree.root(), 3, 40);
    std::fs::write(&dot_path, &dot).expect("write dot");
    println!("graphviz: {} (render with `dot -Tsvg`)", dot_path.display());

    // Day 2: a new process reloads the snapshot and is predictive from
    // the first access — no cold start.
    let mut warm = {
        let mut file = std::fs::File::open(&snap_path).expect("open snapshot");
        read_tree(&mut file).expect("read snapshot")
    };
    let mut cold = PrefetchTree::new();
    let day2 = TraceKind::Cad.generate(20_000, 6); // same design, new session
    let (mut warm_hits, mut cold_hits) = (0u64, 0u64);
    for b in day2.blocks() {
        if warm.record_access(b).predictable {
            warm_hits += 1;
        }
        if cold.record_access(b).predictable {
            cold_hits += 1;
        }
    }
    println!(
        "day 2 ({} refs): warm-started tree predicts {:.1}% vs cold start {:.1}%",
        day2.len(),
        100.0 * warm_hits as f64 / day2.len() as f64,
        100.0 * cold_hits as f64 / day2.len() as f64,
    );
}
