//! Shoot-out of all eight policies across all four workloads — a compact
//! version of the paper's whole evaluation, run in parallel with rayon.
//!
//! ```text
//! cargo run --release --example policy_shootout [refs] [cache_blocks]
//! ```

use predictive_prefetch::prelude::*;
use prefetch_sim::run_cells;

fn main() {
    let mut args = std::env::args().skip(1);
    let refs: usize = args.next().map(|s| s.parse().expect("refs")).unwrap_or(100_000);
    let cache: usize = args.next().map(|s| s.parse().expect("cache blocks")).unwrap_or(1024);

    let specs = [
        PolicySpec::NoPrefetch,
        PolicySpec::NextLimit,
        PolicySpec::Tree,
        PolicySpec::TreeNextLimit,
        PolicySpec::TreeLvc,
        PolicySpec::TreeThreshold(0.05),
        PolicySpec::TreeChildren(3),
        PolicySpec::PerfectSelector,
    ];

    println!("generating 4 traces × {refs} refs ...");
    let traces: Vec<Trace> = TraceKind::ALL.iter().map(|k| k.generate(refs, 2024)).collect();

    let cells: Vec<(usize, SimConfig)> = (0..traces.len())
        .flat_map(|ti| specs.iter().map(move |&s| (ti, SimConfig::new(cache, s))))
        .collect();
    println!("running {} simulations in parallel ({cache}-block cache) ...\n", cells.len());
    let results = run_cells(&traces, &cells).expect("cell list indexes the traces above");

    print!("{:<22}", "miss rate (%)");
    for k in TraceKind::ALL {
        print!("{:>9}", k.name());
    }
    println!();
    for &spec in &specs {
        print!("{:<22}", spec.name());
        for (ti, _) in TraceKind::ALL.iter().enumerate() {
            let cell = results
                .iter()
                .find(|c| c.trace_index == ti && c.result.config.policy == spec)
                .expect("cell");
            print!("{:>9.2}", 100.0 * cell.result.metrics.miss_rate());
        }
        println!();
    }

    println!("\nvirtual elapsed time per reference (µs, Section 3 timing model):");
    for &spec in &specs {
        print!("{:<22}", spec.name());
        for (ti, _) in TraceKind::ALL.iter().enumerate() {
            let cell = results
                .iter()
                .find(|c| c.trace_index == ti && c.result.config.policy == spec)
                .expect("cell");
            let m = &cell.result.metrics;
            print!("{:>9.0}", 1000.0 * m.elapsed_ms / m.refs as f64);
        }
        println!();
    }
}
