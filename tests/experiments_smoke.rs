//! Smoke tests of the full experiment registry: every table and figure
//! regenerates at quick scale and renders to both output formats.

use predictive_prefetch::prelude::*;
use prefetch_sim::experiments::ALL_IDS;

#[test]
fn every_experiment_id_runs_and_renders() {
    let opts = ExperimentOpts {
        refs: 3_000,
        seed: 1,
        cache_sizes: vec![64, 256],
        ..ExperimentOpts::default()
    };
    let traces = TraceSet::generate(&opts);
    for id in ALL_IDS {
        let reports = run_experiment(id, &traces, &opts);
        assert!(!reports.is_empty(), "{id} produced no reports");
        for r in &reports {
            assert!(r.id.starts_with(id), "{id} report has id {}", r.id);
            assert!(!r.rows.is_empty(), "{}: no rows", r.id);
            let csv = r.to_csv();
            assert!(csv.lines().count() > r.rows.len(), "{}: csv missing header", r.id);
            let md = r.to_markdown();
            assert!(md.contains(&r.id), "{}: markdown missing id", r.id);
        }
    }
}

#[test]
fn run_all_covers_every_artifact_in_order() {
    let opts = ExperimentOpts {
        refs: 3_000,
        seed: 2,
        cache_sizes: vec![64, 256],
        ..ExperimentOpts::default()
    };
    let traces = TraceSet::generate(&opts);
    let reports = run_all(&traces, &opts);
    // Every id appears at least once (figures with per-trace reports
    // appear multiple times).
    for id in ALL_IDS {
        assert!(reports.iter().any(|r| r.id.starts_with(id)), "run_all missing {id}");
    }
    // Paper order: table1 first; the extension reports (ablation, disks,
    // resilience) come after every paper artifact.
    assert_eq!(reports.first().unwrap().id, "table1");
    let table4_pos = reports.iter().position(|r| r.id == "table4").unwrap();
    for r in &reports[table4_pos + 1..] {
        assert!(
            r.id.starts_with("ablation")
                || r.id.starts_with("disks")
                || r.id.starts_with("resilience"),
            "unexpected report after table4: {}",
            r.id
        );
    }
}

#[test]
fn experiments_are_deterministic() {
    let opts =
        ExperimentOpts { refs: 2_000, seed: 3, cache_sizes: vec![64], ..ExperimentOpts::default() };
    let t1 = TraceSet::generate(&opts);
    let t2 = TraceSet::generate(&opts);
    let a = run_experiment("fig6", &t1, &opts);
    let b = run_experiment("fig6", &t2, &opts);
    for (ra, rb) in a.iter().zip(&b) {
        assert_eq!(ra.rows, rb.rows, "{} not deterministic", ra.id);
    }
}

#[test]
fn fig13_memory_column_matches_paper_node_size() {
    let opts = ExperimentOpts {
        refs: 2_000,
        seed: 4,
        cache_sizes: vec![64, 256],
        ..ExperimentOpts::default()
    };
    let traces = TraceSet::generate(&opts);
    let r = &run_experiment("fig13", &traces, &opts)[0];
    // 32768 nodes × 40 bytes = 1.25 MB, the paper's headline number.
    let row = r.rows.iter().find(|row| row[0] == "32768").expect("32K row");
    assert_eq!(row[1], "1280");
}
