//! Streaming/materialized equivalence (property-based).
//!
//! The streaming pipeline's contract is that it changes *where records
//! live*, never *what the simulator sees*: for the same (kind, refs,
//! seed), driving the simulator from a [`SynthSource`] generator must
//! produce bit-identical `SimMetrics` to materializing the whole trace
//! first — for every synthetic workload, every headline policy, and with
//! fault injection active.

use predictive_prefetch::prelude::*;
use proptest::prelude::*;

fn assert_stream_matches_batch(kind: TraceKind, refs: usize, seed: u64, cfg: &SimConfig) {
    cfg.validate().unwrap();
    let trace = kind.generate(refs, seed);
    let batch = run_simulation(&trace, cfg);
    let mut stream = kind.stream(refs, seed);
    let streamed = run_source(&mut stream, cfg).unwrap();
    assert_eq!(
        batch.metrics, streamed.metrics,
        "{kind} × {:?} diverged between batch and stream",
        cfg.policy
    );
    assert_eq!(batch.trace, streamed.trace, "{kind} name diverged");
    // And the source rewinds to an identical second pass.
    stream.rewind().unwrap();
    let again = run_source(&mut stream, cfg).unwrap();
    assert_eq!(streamed.metrics, again.metrics, "{kind} rewind diverged");
}

/// Exhaustive: every workload × every headline policy, plain config.
#[test]
fn every_kind_and_headline_policy_streams_identically() {
    for kind in TraceKind::ALL {
        for &spec in &PolicySpec::HEADLINE {
            assert_stream_matches_batch(kind, 3000, 7, &SimConfig::new(128, spec));
        }
    }
}

/// Exhaustive: same matrix with a finite disk array and fault injection
/// live (the `--fault-rate` path of `pfsim`).
#[test]
fn every_kind_and_headline_policy_streams_identically_under_faults() {
    for kind in TraceKind::ALL {
        for &spec in &PolicySpec::HEADLINE {
            let cfg = SimConfig::new(128, spec).with_disks(2).with_fault_rate(13, 0.1);
            assert_stream_matches_batch(kind, 3000, 7, &cfg);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random (kind, seed, refs, cache, policy): streaming == batch.
    #[test]
    fn streaming_equivalence_random(
        kind_idx in 0usize..4,
        policy_idx in 0usize..4,
        seed in any::<u64>(),
        refs in 1usize..2500,
        cache in 8usize..256,
    ) {
        let kind = TraceKind::ALL[kind_idx];
        let spec = PolicySpec::HEADLINE[policy_idx];
        let cfg = SimConfig::new(cache, spec);
        cfg.validate().unwrap();
        let trace = kind.generate(refs, seed);
        let batch = run_simulation(&trace, &cfg);
        let mut stream = kind.stream(refs, seed);
        let streamed = run_source(&mut stream, &cfg).unwrap();
        prop_assert_eq!(batch.metrics, streamed.metrics);
    }

    /// Same, with a finite array and a random fault rate (including 0).
    #[test]
    fn streaming_equivalence_random_under_faults(
        kind_idx in 0usize..4,
        policy_idx in 0usize..4,
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        rate_millis in 0u32..250,
        disks in 1usize..4,
    ) {
        let kind = TraceKind::ALL[kind_idx];
        let spec = PolicySpec::HEADLINE[policy_idx];
        let cfg = SimConfig::new(64, spec)
            .with_disks(disks)
            .with_fault_rate(fault_seed, rate_millis as f64 / 1000.0);
        cfg.validate().unwrap();
        let trace = kind.generate(1500, seed);
        let batch = run_simulation(&trace, &cfg);
        let mut stream = kind.stream(1500, seed);
        let streamed = run_source(&mut stream, &cfg).unwrap();
        prop_assert_eq!(batch.metrics, streamed.metrics);
    }
}
