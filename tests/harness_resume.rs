//! Integration tests for the resilient experiment harness: a checkpointed
//! sweep that is interrupted and relaunched must reproduce the
//! uninterrupted run bit for bit, and a cell that panics must fail alone
//! while its siblings complete.

use predictive_prefetch::prelude::*;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Fresh scratch directory under the system temp dir; removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(prefix: &str) -> Self {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("pfsim-harness-{prefix}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn grid(cache_sizes: &[usize]) -> Vec<SimConfig> {
    let policies = [PolicySpec::NoPrefetch, PolicySpec::Tree, PolicySpec::TreeNextLimit];
    let mut configs = Vec::new();
    for &cache in cache_sizes {
        for &p in &policies {
            configs.push(SimConfig::new(cache, p));
        }
    }
    configs
}

fn cells_of(traces: &[Trace], configs: &[SimConfig]) -> Vec<(usize, SimConfig)> {
    let mut cells = Vec::new();
    for ti in 0..traces.len() {
        for cfg in configs {
            cells.push((ti, *cfg));
        }
    }
    cells
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Kill-and-resume determinism: run the first `k` cells of a grid into
    /// a checkpoint journal (the "interrupted" run), then relaunch the
    /// full grid against the same journal. The resumed grid must be
    /// bit-identical to an uninterrupted reference run, and exactly the
    /// journalled cells must be restored rather than recomputed.
    #[test]
    fn interrupted_then_resumed_grid_is_bit_identical(
        seed in 0u64..1000,
        refs in 500usize..2000,
        kill_frac in 0.0f64..1.0,
    ) {
        let scratch = Scratch::new("resume");
        let traces = vec![
            TraceKind::Cad.generate(refs, seed),
            TraceKind::Snake.generate(refs, seed.wrapping_add(1)),
        ];
        let configs = grid(&[64, 256]);
        let cells = cells_of(&traces, &configs);
        let k = ((cells.len() as f64) * kill_frac) as usize;

        // Reference: one uninterrupted, uncheckpointed run.
        let reference = run_cells_checkpointed(&traces, &cells, &HarnessOpts::default())
            .unwrap()
            .completed_cells();
        prop_assert_eq!(reference.len(), cells.len());

        // "Interrupted" run: only the first k cells reach the journal.
        let partial = run_cells_checkpointed(
            &traces,
            &cells[..k],
            &HarnessOpts::checkpointed(&scratch.0),
        )
        .unwrap();
        prop_assert!(partial.is_complete());

        // Relaunch over the full grid with the same journal.
        let opts = HarnessOpts::checkpointed(&scratch.0);
        let resumed = run_cells_checkpointed(&traces, &cells, &opts).unwrap();
        prop_assert!(resumed.is_complete());
        prop_assert_eq!(opts.log.summary().restored, k as u64);

        let resumed_cells = resumed.completed_cells();
        prop_assert_eq!(resumed_cells.len(), reference.len());
        for (a, b) in reference.iter().zip(&resumed_cells) {
            prop_assert_eq!(a.trace_index, b.trace_index);
            prop_assert_eq!(&a.result.config, &b.result.config);
            // SimMetrics equality is field-exact (floats compared by
            // value), so this is the bit-identical check.
            prop_assert_eq!(&a.result.metrics, &b.result.metrics);
        }
    }
}

/// A panicking policy must not take the sweep down: its cell ends
/// `Failed`, every sibling completes, and a relaunch against the journal
/// restores the good cells without touching their results.
#[test]
fn panicking_cell_fails_alone_and_resume_skips_completed_siblings() {
    let scratch = Scratch::new("panic");
    let traces = vec![TraceKind::Cad.generate(1500, 7)];
    let cells = vec![
        (0, SimConfig::new(64, PolicySpec::Tree)),
        (0, SimConfig::new(64, PolicySpec::PanicProbe { after: 50 })),
        (0, SimConfig::new(256, PolicySpec::Tree)),
    ];
    let opts = HarnessOpts { max_attempts: 1, ..HarnessOpts::checkpointed(&scratch.0) };
    let run = run_cells_checkpointed(&traces, &cells, &opts).unwrap();

    assert!(!run.is_complete());
    assert!(run.cells[0].result().is_some());
    assert!(run.cells[2].result().is_some());
    assert!(
        matches!(&run.cells[1].status, CellStatus::Failed { error: SweepError::Panicked { .. } }),
        "probe cell should fail with a panic, got {:?}",
        run.cells[1].status
    );
    assert_eq!(opts.log.summary().ok, 2);
    assert_eq!(opts.log.summary().failed, 1);

    // Relaunch: the two good cells restore bit-identically, the probe is
    // re-attempted (failures are never journalled) and fails again.
    let opts2 = HarnessOpts { max_attempts: 1, ..HarnessOpts::checkpointed(&scratch.0) };
    let again = run_cells_checkpointed(&traces, &cells, &opts2).unwrap();
    assert!(again.cells[0].restored && again.cells[2].restored);
    assert!(!again.cells[1].restored);
    assert!(matches!(&again.cells[1].status, CellStatus::Failed { .. }));
    for i in [0usize, 2] {
        assert_eq!(
            run.cells[i].result().unwrap().metrics,
            again.cells[i].result().unwrap().metrics,
            "restored cell {i} must be bit-identical"
        );
    }
}

/// The journal survives torn writes: truncating the last line (a crash
/// mid-rename leaves at worst a torn tail) costs at most one cell, never
/// the whole journal.
#[test]
fn torn_journal_tail_loses_at_most_one_cell() {
    let scratch = Scratch::new("torn");
    let traces = vec![TraceKind::Sitar.generate(1000, 3)];
    let configs = grid(&[64]);
    let cells = cells_of(&traces, &configs);
    let opts = HarnessOpts::checkpointed(&scratch.0);
    run_cells_checkpointed(&traces, &cells, &opts).unwrap();

    // Tear the last journal line in half.
    let journal = scratch.0.join("journal.jsonl");
    let text = std::fs::read_to_string(&journal).unwrap();
    let torn = &text[..text.trim_end().len() - 10];
    std::fs::write(&journal, torn).unwrap();

    let opts2 = HarnessOpts::checkpointed(&scratch.0);
    let resumed = run_cells_checkpointed(&traces, &cells, &opts2).unwrap();
    assert!(resumed.is_complete());
    let s = opts2.log.summary();
    assert_eq!(s.restored, cells.len() as u64 - 1, "exactly the torn cell recomputes");
    assert_eq!(s.ok, 1);
}
