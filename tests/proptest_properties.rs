//! Property-based tests (proptest) over the core data structures and the
//! end-to-end simulator: random inputs, structural invariants.

use predictive_prefetch::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The simulator satisfies its conservation laws on arbitrary block
    /// streams, for every policy and tiny-to-small cache sizes.
    #[test]
    fn simulator_conservation_on_random_traces(
        blocks in proptest::collection::vec(0u64..64, 1..400),
        cache in 1usize..64,
        policy_idx in 0usize..8,
    ) {
        let policies = [
            PolicySpec::NoPrefetch,
            PolicySpec::NextLimit,
            PolicySpec::Tree,
            PolicySpec::TreeNextLimit,
            PolicySpec::TreeLvc,
            PolicySpec::TreeThreshold(0.05),
            PolicySpec::TreeChildren(3),
            PolicySpec::PerfectSelector,
        ];
        let trace = Trace::from_blocks(blocks.clone());
        let r = run_simulation(&trace, &SimConfig::new(cache, policies[policy_idx]));
        let m = &r.metrics;
        prop_assert_eq!(m.refs as usize, blocks.len());
        prop_assert_eq!(m.demand_hits + m.prefetch_hits + m.misses, m.refs);
        prop_assert!(m.prefetch_hits <= m.prefetches_issued);
        prop_assert!(m.miss_rate() >= 0.0 && m.miss_rate() <= 1.0);
    }

    /// The prefetch tree's weights always equal visit counts: the root's
    /// weight equals the number of substrings started, and every node's
    /// children weigh no more than the node itself.
    #[test]
    fn tree_weight_invariants(blocks in proptest::collection::vec(0u64..16, 1..500)) {
        let mut tree = PrefetchTree::new();
        for &b in &blocks {
            tree.record_access(BlockId(b));
        }
        tree.check_invariants();
        prop_assert_eq!(tree.stats().accesses as usize, blocks.len());
        prop_assert!(tree.stats().predictable <= tree.stats().accesses);
    }

    /// Node-limited trees never exceed their limit and survive arbitrary
    /// streams.
    #[test]
    fn tree_node_limit_respected(
        blocks in proptest::collection::vec(0u64..1000, 1..500),
        limit in 2usize..64,
    ) {
        let mut tree = PrefetchTree::with_node_limit(limit);
        for &b in &blocks {
            tree.record_access(BlockId(b));
        }
        tree.check_invariants();
        // The cursor node is pinned, so allow limit + 1.
        prop_assert!(tree.node_count() <= limit + 1,
            "node count {} over limit {}", tree.node_count(), limit);
    }

    /// Candidate probabilities are valid and children sum to at most 1.
    #[test]
    fn candidate_probabilities_valid(blocks in proptest::collection::vec(0u64..8, 2..400)) {
        let mut tree = PrefetchTree::new();
        for &b in &blocks {
            tree.record_access(BlockId(b));
        }
        for max_depth in [1u32, 3] {
            let cands = tree.candidates_below(tree.root(), max_depth, 64);
            let mut depth1_sum = 0.0;
            for c in &cands {
                prop_assert!(c.probability > 0.0 && c.probability <= 1.0 + 1e-9);
                prop_assert!(c.probability <= c.parent_probability + 1e-9);
                prop_assert!(c.depth >= 1 && c.depth <= max_depth);
                if c.depth == 1 {
                    depth1_sum += c.probability;
                }
            }
            prop_assert!(depth1_sum <= 1.0 + 1e-9);
        }
    }

    /// The online stack-distance estimator matches the offline Mattson
    /// oracle on arbitrary streams (undecayed).
    #[test]
    fn stack_distance_matches_oracle(blocks in proptest::collection::vec(0u64..32, 1..300)) {
        let trace = Trace::from_blocks(blocks);
        let oracle = ReuseDistances::compute(&trace);
        let mut online = StackDistanceEstimator::new(1.0);
        for b in trace.blocks() {
            online.record(b.0);
        }
        for n in [1usize, 2, 4, 8, 16, 32, 64] {
            let got = online.hit_rate(n);
            let expect = oracle.hit_rate(n);
            prop_assert!((got - expect).abs() < 1e-9,
                "H({}) online {} vs oracle {}", n, got, expect);
        }
    }

    /// Trace binary round-trip over arbitrary records.
    #[test]
    fn binary_format_round_trips(
        recs in proptest::collection::vec((any::<u64>(), 0u32..100, any::<bool>()), 0..200)
    ) {
        let mut trace = Trace::empty();
        for (b, pid, write) in recs {
            let r = if write { TraceRecord::write(b) } else { TraceRecord::read(b) };
            trace.push(r.with_pid(pid));
        }
        let mut buf = Vec::new();
        predictive_prefetch::trace::io::write_binary(&trace, &mut buf).unwrap();
        let back = predictive_prefetch::trace::io::read_binary(&mut &buf[..]).unwrap();
        prop_assert_eq!(back.records(), trace.records());
    }

    /// The cost-benefit equations stay in their analytic ranges for any
    /// valid inputs.
    #[test]
    fn model_outputs_bounded(
        p_b in 0.0001f64..1.0,
        ratio in 0.0001f64..1.0,
        d in 1u32..20,
        s in 0.0f64..16.0,
        t_cpu in 0.1f64..1000.0,
    ) {
        let p_x = (p_b / ratio).min(1.0);
        let params = SystemParams::with_t_cpu(t_cpu);
        let b = predictive_prefetch::core::benefit::benefit(p_b, d, p_x, &params, s);
        prop_assert!(b <= params.t_disk + 1e-9);
        prop_assert!(b >= -params.t_disk - 1e-9);
        let oh = predictive_prefetch::core::overhead::t_oh(p_b, p_x, &params);
        prop_assert!((0.0..=params.t_driver + 1e-12).contains(&oh));
        let c = predictive_prefetch::core::cost::prefetch_eject_cost(p_b, d, 1, &params, s);
        prop_assert!(c >= 0.0 && c.is_finite());
    }

    /// Tree snapshots round-trip arbitrary training streams exactly
    /// (structure, weights, candidate enumeration).
    #[test]
    fn tree_snapshot_round_trips(blocks in proptest::collection::vec(0u64..64, 0..600)) {
        use predictive_prefetch::tree::{read_tree, write_tree};
        let mut tree = PrefetchTree::new();
        for &b in &blocks {
            tree.record_access(BlockId(b));
        }
        let mut buf = Vec::new();
        write_tree(&tree, &mut buf).unwrap();
        let back = read_tree(&mut &buf[..]).unwrap();
        prop_assert_eq!(back.node_count(), tree.node_count());
        prop_assert_eq!(back.weight(back.root()), tree.weight(tree.root()));
        let a = tree.candidates_below(tree.root(), 4, 32);
        let b = back.candidates_below(back.root(), 4, 32);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.block, y.block);
            prop_assert!((x.probability - y.probability).abs() < 1e-12);
        }
        back.check_invariants();
    }

    /// Corrupt tree snapshots never panic: any byte-level mutilation is
    /// either rejected or yields a valid tree (when the mutation lands in
    /// a don't-care position).
    #[test]
    fn tree_snapshot_corruption_is_graceful(
        blocks in proptest::collection::vec(0u64..16, 1..100),
        flip_at in 0usize..200,
        flip_bits in 1u8..=255,
    ) {
        use predictive_prefetch::tree::{read_tree, write_tree};
        let mut tree = PrefetchTree::new();
        for &b in &blocks {
            tree.record_access(BlockId(b));
        }
        let mut buf = Vec::new();
        write_tree(&tree, &mut buf).unwrap();
        let idx = flip_at % buf.len();
        buf[idx] ^= flip_bits;
        if let Ok(t) = read_tree(&mut &buf[..]) {
            // Accepted mutations must still produce a structurally valid
            // tree (check_invariants panics otherwise, failing the test).
            t.check_invariants();
        }
    }

    /// Disk-array completions respect service time and per-disk FIFO under
    /// arbitrary request sequences.
    #[test]
    fn disk_array_fifo_and_service(
        reqs in proptest::collection::vec((0u64..128, 0.0f64..10.0), 1..300),
        num_disks in 1usize..8,
    ) {
        use predictive_prefetch::disk::{DiskArray, DiskArrayConfig, Striping};
        let cfg = DiskArrayConfig {
            num_disks,
            service_ms: 7.0,
            striping: Striping::RoundRobin { stripe_unit: 4 },
        };
        let mut array = DiskArray::new(cfg).unwrap();
        let mut now = 0.0f64;
        let mut last = vec![0.0f64; num_disks];
        for (b, dt) in reqs {
            now += dt;
            let block = BlockId(b);
            let d = cfg.striping.disk_for(block, num_disks);
            let c = array.submit(block, now).unwrap().completion_ms;
            prop_assert!(c >= now + 7.0 - 1e-9);
            prop_assert!(c >= last[d] + 7.0 - 1e-9 || last[d] == 0.0);
            last[d] = c;
        }
        let stats = array.stats();
        prop_assert!(stats.queue_fraction() <= 1.0);
        prop_assert!(stats.mean_utilization() <= 1.0 + 1e-9);
    }

    /// The fault injector's schedule is a pure function of (seed, plan):
    /// two arrays driven identically produce identical outcomes, and a
    /// different seed is allowed to differ (not asserted — just exercised).
    #[test]
    fn fault_schedules_are_deterministic(
        reqs in proptest::collection::vec((0u64..256, 0.0f64..8.0), 1..300),
        num_disks in 1usize..6,
        seed in any::<u64>(),
        rate_millis in 1u32..300,
    ) {
        use predictive_prefetch::disk::{DiskArray, DiskArrayConfig, FaultPlan};
        let cfg = DiskArrayConfig::with_disks(num_disks);
        let plan = FaultPlan::uniform(seed, rate_millis as f64 / 1000.0, cfg.service_ms);
        let mut a = DiskArray::with_faults(cfg, plan).unwrap();
        let mut b = DiskArray::with_faults(cfg, plan).unwrap();
        let mut now = 0.0f64;
        for &(blk, dt) in &reqs {
            now += dt;
            prop_assert_eq!(a.submit(BlockId(blk), now), b.submit(BlockId(blk), now));
        }
        prop_assert_eq!(a.stats(), b.stats());
    }

    /// Same (seed, FaultPlan, trace, policy) → identical SimMetrics, and a
    /// zero fault rate reproduces the fault-free baseline bit for bit.
    #[test]
    fn faulted_simulations_are_deterministic(
        blocks in proptest::collection::vec(0u64..64, 1..300),
        cache in 2usize..64,
        num_disks in 1usize..4,
        seed in any::<u64>(),
        policy_idx in 0usize..3,
        rate_millis in 0u32..200,
    ) {
        let policies = [PolicySpec::NoPrefetch, PolicySpec::Tree, PolicySpec::TreeNextLimit];
        let trace = Trace::from_blocks(blocks);
        let rate = rate_millis as f64 / 1000.0;
        let cfg = SimConfig::new(cache, policies[policy_idx])
            .with_disks(num_disks)
            .with_fault_rate(seed, rate);
        cfg.validate().unwrap();
        let a = run_simulation(&trace, &cfg);
        let b = run_simulation(&trace, &cfg);
        prop_assert_eq!(a.metrics, b.metrics);
        if rate == 0.0 {
            let baseline =
                run_simulation(&trace, &SimConfig::new(cache, policies[policy_idx]).with_disks(num_disks));
            prop_assert_eq!(a.metrics, baseline.metrics);
            prop_assert_eq!(a.metrics.total_faults(), 0);
        }
    }

    /// BufferCache never exceeds capacity and reference outcomes are
    /// consistent with residency, under random operation sequences.
    #[test]
    fn buffer_cache_bounded(
        ops in proptest::collection::vec((0u64..32, 0u8..4), 1..500),
        cap in 1usize..16,
    ) {
        let mut cache = BufferCache::new(cap);
        for (b, op) in ops {
            let block = BlockId(b);
            match op {
                0 => {
                    let resident = cache.contains(block);
                    let outcome = cache.reference(block);
                    use predictive_prefetch::cache::buffer_cache::RefOutcome;
                    prop_assert_eq!(matches!(outcome, RefOutcome::Miss), !resident);
                }
                1 => {
                    if !cache.contains(block) && !cache.is_full() {
                        cache.insert_demand(block);
                    }
                }
                2 => {
                    if !cache.contains(block) && !cache.is_full() {
                        cache.insert_prefetch(block, PrefetchMeta::default());
                    }
                }
                _ => {
                    cache.evict_demand_lru();
                }
            }
            prop_assert!(cache.len() <= cap);
            prop_assert_eq!(cache.len(), cache.demand_len() + cache.prefetch_len());
        }
    }
}
