//! Golden-file test for the structured run-log schema.
//!
//! Every [`CellStatus`] variant maps to one JSONL record with a stable
//! event name and stable field names; external tooling greps and parses
//! these, so a rename must show up as a failing diff against
//! `tests/golden/log_schema.jsonl`.

use predictive_prefetch::prelude::*;
use std::sync::Arc;

fn sample_result() -> SimResult {
    let metrics = SimMetrics { refs: 4000, elapsed_ms: 1234.5, ..SimMetrics::default() };
    SimResult {
        config: SimConfig::new(64, PolicySpec::Tree),
        trace: Arc::from("cello"),
        metrics,
        skipped_records: 0,
        phases: PhaseTimes::default(),
    }
}

#[test]
fn cell_status_records_match_the_golden_schema() {
    const FP: u64 = 0xdead_beef;
    let statuses: Vec<(CellStatus, u32, bool)> = vec![
        (CellStatus::Ok(Box::new(sample_result())), 1, false),
        (CellStatus::Ok(Box::new(sample_result())), 0, true),
        (
            CellStatus::Failed { error: SweepError::Panicked { message: "boom".to_string() } },
            3,
            false,
        ),
        (CellStatus::TimedOut { limit_ms: 5000 }, 2, false),
        (
            CellStatus::Skipped {
                reason: "invalid configuration: cache_blocks must be > 0".to_string(),
            },
            0,
            false,
        ),
    ];
    // Timestamps are suppressed (None) so the rendering is deterministic.
    let rendered: Vec<String> = statuses
        .iter()
        .map(|(status, attempts, restored)| {
            cell_status_record(FP, "cello", status, *attempts, *restored).render_json(None)
        })
        .collect();

    let golden = include_str!("golden/log_schema.jsonl");
    let golden_lines: Vec<&str> = golden.lines().collect();
    assert_eq!(
        rendered.len(),
        golden_lines.len(),
        "golden file must hold one record per CellStatus case"
    );
    for (i, (got, want)) in rendered.iter().zip(&golden_lines).enumerate() {
        assert_eq!(got, want, "log schema drifted at golden line {}", i + 1);
    }
}

#[test]
fn every_cell_status_variant_is_covered() {
    // If a CellStatus variant is ever added, this match stops compiling,
    // forcing the golden file (above) to grow with it.
    let probe = |s: &CellStatus| match s {
        CellStatus::Ok(_) => "cell_ok",
        CellStatus::Failed { .. } => "cell_failed",
        CellStatus::TimedOut { .. } => "cell_timeout",
        CellStatus::Skipped { .. } => "cell_skipped",
    };
    let s = CellStatus::TimedOut { limit_ms: 1 };
    assert_eq!(probe(&s), "cell_timeout");
    assert_eq!(cell_status_record(0, "t", &s, 1, false).event(), "cell_timeout");
}
