//! Golden-snapshot compatibility: `tests/golden/cad-10k.pftree` is a
//! checked-in `pftree-snap/v1` file (CAD trace, 10 k refs, `tree`
//! policy). Every future reader must keep restoring it bit-exactly —
//! if the format evolves, bump the version and add a new fixture
//! instead of regenerating this one. The CI `snapshot-compat` job
//! additionally replays a warm-started `pfsim` run against the
//! checked-in advice baseline (`tests/golden/snapshot-compat.txt`).

use prefetch_tree::PrefetchTree;

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/cad-10k.pftree")
}

#[test]
fn golden_snapshot_restores_with_pinned_state() {
    let tree = PrefetchTree::load_snapshot(fixture_path()).expect("golden fixture must restore");
    tree.check_invariants();
    // Pinned at fixture-creation time; a mismatch means the reader's
    // interpretation of v1 drifted, which is a compatibility break.
    assert_eq!(tree.node_count(), 7041);
    assert_eq!(tree.stats().accesses, 10_000);
    assert_eq!(tree.stats().nodes_created, 7041);
    assert_eq!(tree.node_limit(), usize::MAX);
}

#[test]
fn golden_snapshot_continues_training_deterministically() {
    use prefetch_trace::synth::TraceKind;
    let mut tree = PrefetchTree::load_snapshot(fixture_path()).unwrap();
    // Continue on a fresh CAD stream (different seed than training).
    for b in TraceKind::Cad.generate(5_000, 7).blocks() {
        tree.record_access(b);
    }
    tree.check_invariants();
    assert_eq!(tree.stats().accesses, 15_000);
    // Re-serializing the continued tree is stable across runs: snapshot
    // bytes are a pure function of the access history.
    let mut a = Vec::new();
    let mut b = Vec::new();
    tree.write_snapshot(&mut a).unwrap();
    tree.write_snapshot(&mut b).unwrap();
    assert_eq!(a, b);
}
