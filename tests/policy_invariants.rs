//! Cross-policy integration invariants: conservation laws, cache bounds,
//! and policy-specific contracts, exercised over every (trace × policy)
//! combination.

use predictive_prefetch::prelude::*;

const ALL_POLICIES: [PolicySpec; 8] = [
    PolicySpec::NoPrefetch,
    PolicySpec::NextLimit,
    PolicySpec::Tree,
    PolicySpec::TreeNextLimit,
    PolicySpec::TreeLvc,
    PolicySpec::TreeThreshold(0.05),
    PolicySpec::TreeChildren(3),
    PolicySpec::PerfectSelector,
];

#[test]
fn conservation_laws_hold_for_every_combination() {
    for kind in TraceKind::ALL {
        let trace = kind.generate(6_000, 9);
        for spec in ALL_POLICIES {
            for cache in [2usize, 64, 1024] {
                let r = run_simulation(&trace, &SimConfig::new(cache, spec));
                let m = &r.metrics;
                // run_simulation already calls check_invariants; assert the
                // cross-run laws too.
                assert_eq!(m.refs, 6_000, "{kind}/{spec:?}/{cache}");
                assert_eq!(
                    m.demand_hits + m.prefetch_hits + m.misses,
                    m.refs,
                    "{kind}/{spec:?}/{cache}"
                );
                assert!(m.disk_reads() >= m.misses);
                assert!(m.elapsed_ms >= m.stall_ms);
            }
        }
    }
}

#[test]
fn no_prefetch_never_touches_the_prefetch_cache() {
    for kind in TraceKind::ALL {
        let trace = kind.generate(4_000, 3);
        let m = run_simulation(&trace, &SimConfig::new(128, PolicySpec::NoPrefetch)).metrics;
        assert_eq!(m.prefetches_issued, 0);
        assert_eq!(m.prefetch_hits, 0);
        assert_eq!(m.prefetch_evictions, 0);
    }
}

#[test]
fn no_prefetch_miss_rate_is_monotone_in_cache_size() {
    // LRU hit rate is monotone in capacity (inclusion property).
    for kind in TraceKind::ALL {
        let trace = kind.generate(8_000, 5);
        let mut prev = f64::INFINITY;
        for cache in [16usize, 64, 256, 1024, 4096] {
            let m = run_simulation(&trace, &SimConfig::new(cache, PolicySpec::NoPrefetch))
                .metrics
                .miss_rate();
            assert!(
                m <= prev + 1e-12,
                "{kind}: miss rate rose with cache size at {cache}: {m} > {prev}"
            );
            prev = m;
        }
    }
}

#[test]
fn bigger_caches_never_hurt_tree_policies_much() {
    // Prefetching breaks strict LRU inclusion, but a 16× bigger cache
    // should never be clearly worse.
    for kind in TraceKind::ALL {
        let trace = kind.generate(8_000, 6);
        for spec in [PolicySpec::Tree, PolicySpec::TreeNextLimit] {
            let small = run_simulation(&trace, &SimConfig::new(64, spec)).metrics.miss_rate();
            let big = run_simulation(&trace, &SimConfig::new(1024, spec)).metrics.miss_rate();
            assert!(
                big <= small + 0.02,
                "{kind}/{spec:?}: 1024-block cache ({big:.3}) worse than 64 ({small:.3})"
            );
        }
    }
}

#[test]
fn next_limit_only_prefetches_successors() {
    // Every prefetch hit under next-limit must be a block whose
    // predecessor missed earlier; indirectly: on a pure random trace with
    // no sequential adjacency, prefetch hits are (almost) zero.
    let trace = TraceKind::Cad.generate(8_000, 7); // no adjacency
    let m = run_simulation(&trace, &SimConfig::new(256, PolicySpec::NextLimit)).metrics;
    assert!(
        m.prefetch_hit_rate() < 0.02,
        "next-limit hit rate {} on an adjacency-free trace",
        m.prefetch_hit_rate()
    );
}

#[test]
fn oracle_never_fetches_unused_blocks_wastefully() {
    // Perfect-selector prefetches the actual next access: every prefetch
    // is referenced in the very next period unless evicted first, so its
    // prefetch hit rate should be near 1.
    for kind in TraceKind::ALL {
        let trace = kind.generate(8_000, 8);
        let m = run_simulation(&trace, &SimConfig::new(256, PolicySpec::PerfectSelector)).metrics;
        if m.prefetches_issued > 50 {
            assert!(
                m.prefetch_hit_rate() > 0.95,
                "{kind}: oracle hit rate only {}",
                m.prefetch_hit_rate()
            );
        }
    }
}

#[test]
fn tiny_caches_work_for_all_policies() {
    // Capacity 1 and 2 are the adversarial edge for the partition logic.
    let trace = TraceKind::Sitar.generate(2_000, 4);
    for spec in ALL_POLICIES {
        for cache in [1usize, 2, 3] {
            let r = run_simulation(&trace, &SimConfig::new(cache, spec));
            assert_eq!(r.metrics.refs, 2_000, "{spec:?}/{cache}");
        }
    }
}

#[test]
fn t_cpu_extremes_are_stable() {
    let trace = TraceKind::Cad.generate(5_000, 2);
    for t_cpu in [0.1, 20.0, 640.0, 10_000.0] {
        let cfg = SimConfig::new(256, PolicySpec::Tree).with_t_cpu(t_cpu);
        let r = run_simulation(&trace, &cfg);
        assert!(r.metrics.miss_rate() <= 1.0);
        assert!(r.metrics.elapsed_ms.is_finite());
    }
}

#[test]
fn node_limited_tree_is_consistent() {
    let trace = TraceKind::Cad.generate(10_000, 3);
    let unlimited = run_simulation(&trace, &SimConfig::new(512, PolicySpec::Tree));
    for limit in [64usize, 1024, 1 << 20] {
        let limited =
            run_simulation(&trace, &SimConfig::new(512, PolicySpec::Tree).with_node_limit(limit));
        assert_eq!(limited.metrics.refs, unlimited.metrics.refs);
        // A node limit can only reduce what the tree knows; a huge limit
        // must reproduce the unlimited result exactly.
        if limit == 1 << 20 {
            assert_eq!(limited.metrics, unlimited.metrics);
        }
    }
}

#[test]
fn lookahead_is_only_consumed_by_the_oracle() {
    // Reversing the trace changes next_block at every step; policies other
    // than the oracle must be insensitive to a *spoofed* lookahead — which
    // we verify by the PolicySpec::uses_lookahead flag plus determinism.
    assert!(PolicySpec::PerfectSelector.uses_lookahead());
    for spec in ALL_POLICIES {
        if spec != PolicySpec::PerfectSelector {
            assert!(!spec.uses_lookahead(), "{spec:?}");
        }
    }
}
