//! End-to-end trace pipeline: generate → save → load → simulate must be
//! equivalent to simulating the in-memory trace, for both formats; and the
//! failure-injection paths must error cleanly.

use predictive_prefetch::prelude::*;
use predictive_prefetch::trace::io;

fn tmp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pf-pipeline-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn simulate_from_disk_equals_simulate_in_memory() {
    let dir = tmp_dir();
    for (kind, ext) in [(TraceKind::Cad, "trc"), (TraceKind::Sitar, "txt")] {
        let trace = kind.generate(5_000, 11);
        let path = dir.join(format!("{}.{ext}", kind.name()));
        io::save(&trace, &path).unwrap();
        let loaded = io::load(&path).unwrap();
        assert_eq!(loaded.meta().name, trace.meta().name);

        let cfg = SimConfig::new(256, PolicySpec::TreeNextLimit);
        let a = run_simulation(&trace, &cfg);
        let b = run_simulation(&loaded, &cfg);
        assert_eq!(a.metrics, b.metrics, "{kind}/{ext}");
    }
}

#[test]
fn corrupt_binary_traces_error_not_panic() {
    let trace = TraceKind::Cad.generate(500, 1);
    let mut buf = Vec::new();
    io::write_binary(&trace, &mut buf).unwrap();

    // Truncations at every length must fail or yield a valid prefix —
    // never panic.
    for cut in [1usize, 7, 13, buf.len() / 2, buf.len() - 1] {
        let shorter = &buf[..buf.len().saturating_sub(cut)];
        let _ = io::read_binary(&mut &shorter[..]);
    }
    // Bit flips in the header must be detected.
    for i in 0..6 {
        let mut corrupt = buf.clone();
        corrupt[i] ^= 0xff;
        assert!(io::read_binary(&mut &corrupt[..]).is_err(), "header byte {i} corruption accepted");
    }
}

#[test]
fn text_format_survives_hand_edits() {
    // Users hand-edit text traces; comments and blank lines are fine,
    // garbage is rejected with a line number.
    let src = "# my experiment\n100\n101\n\n# gap\n102 4 W\n";
    let t = io::read_text(&mut std::io::BufReader::new(src.as_bytes())).unwrap();
    assert_eq!(t.len(), 3);

    let bad = "100\noops\n";
    let err = io::read_text(&mut std::io::BufReader::new(bad.as_bytes())).unwrap_err();
    assert!(err.to_string().contains("line 2"), "{err}");
}

#[test]
fn stats_survive_round_trip() {
    let dir = tmp_dir();
    let trace = TraceKind::Snake.generate(8_000, 5);
    let before = TraceStats::compute(&trace);
    let path = dir.join("snake.trc");
    io::save(&trace, &path).unwrap();
    let after = TraceStats::compute(&io::load(&path).unwrap());
    assert_eq!(before, after);
}
