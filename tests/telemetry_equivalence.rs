//! Telemetry soundness properties:
//!
//! * sharded [`Histogram`]s merge losslessly — merging per-shard
//!   histograms equals one histogram over the concatenated samples, for
//!   arbitrary shard splits;
//! * instrumentation is free of observable effect — a run with the full
//!   observer stack (histograms, event sink, profiling) produces
//!   bit-identical [`SimMetrics`] to the bare NullTelemetry run.

use predictive_prefetch::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Histogram::merge over arbitrary shards == histogram of the
    /// concatenated samples, bit-exactly (counts, sum, min, max, and the
    /// serialized words).
    #[test]
    fn histogram_merge_equals_concatenation(
        samples in proptest::collection::vec(0u64..1_000_000_000, 1..300),
        cuts in proptest::collection::vec(0usize..300, 0..6),
    ) {
        // Shard boundaries from the random cut points.
        let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (samples.len() + 1)).collect();
        bounds.push(0);
        bounds.push(samples.len());
        bounds.sort_unstable();

        let mut whole = Histogram::default();
        for &v in &samples {
            whole.record(v);
        }

        let mut merged = Histogram::default();
        for w in bounds.windows(2) {
            let mut shard = Histogram::default();
            for &v in &samples[w[0]..w[1]] {
                shard.record(v);
            }
            merged.merge(&shard);
        }

        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.min(), whole.min());
        prop_assert_eq!(merged.max(), whole.max());
        prop_assert_eq!(merged.sum().to_bits(), whole.sum().to_bits());
        prop_assert_eq!(merged.p50(), whole.p50());
        prop_assert_eq!(merged.p99(), whole.p99());
        prop_assert_eq!(merged.to_words(), whole.to_words());
    }

    /// The fully-instrumented, profiled run folds the same metrics as the
    /// bare run, bit for bit, on arbitrary streams and configurations.
    #[test]
    fn instrumented_run_is_metrics_identical(
        blocks in proptest::collection::vec(0u64..64, 1..400),
        cache in 1usize..64,
        policy_idx in 0usize..4,
        disks in 0usize..3,
    ) {
        let policies = [
            PolicySpec::NoPrefetch,
            PolicySpec::Tree,
            PolicySpec::TreeNextLimit,
            PolicySpec::TreeLvc,
        ];
        let mut cfg = SimConfig::new(cache, policies[policy_idx]);
        if disks > 0 {
            cfg = cfg.with_disks(disks);
        }
        let trace = Trace::from_blocks(blocks);

        let mut plain = SimMetrics::default();
        let t_plain = Simulator::run(&mut trace.source(), &cfg, &mut plain).unwrap();

        let profiled = cfg.with_profiling();
        let mut instrumented = (
            SimMetrics::default(),
            StallHistogramObserver::new(),
            QueueDelayObserver::new(),
        );
        Simulator::run(&mut trace.source(), &profiled, &mut instrumented).unwrap();

        prop_assert_eq!(&plain, &instrumented.0);
        prop_assert!(t_plain.is_zero(), "NullTelemetry must not accumulate phase time");
        // The histograms see every reference and every disk read.
        prop_assert_eq!(instrumented.1.stall_us.count(), plain.refs);
        prop_assert_eq!(instrumented.1.demand_fetch_us.count(), plain.misses);
        prop_assert_eq!(instrumented.2.demand_queue_us.count(), plain.misses);
    }
}
