//! Multi-thread determinism: a sweep run on N worker threads must be
//! bit-identical to the sequential run — per-cell metrics, checkpoint
//! journal bytes, cell fingerprints, and summary counters — including
//! when a cell panics or is cut off by the deadline guard (DESIGN.md
//! §10).
//!
//! `prefetch_pool::set_threads` is process-global, so every test that
//! moves it holds [`KNOB`] for its whole run and restores the default
//! (auto) on drop. Each file under `tests/` is its own process, so the
//! mutex only needs to cover this binary.

use predictive_prefetch::prelude::*;
use predictive_prefetch::sim::run_cells;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

static KNOB: Mutex<()> = Mutex::new(());

/// Hold the knob, pin the pool to `n` threads, restore auto on drop.
struct Threads(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Threads {
    fn pinned(n: usize) -> Self {
        let guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
        prefetch_pool::set_threads(n);
        Threads(guard)
    }

    fn repin(&self, n: usize) {
        prefetch_pool::set_threads(n);
    }
}

impl Drop for Threads {
    fn drop(&mut self) {
        prefetch_pool::set_threads(0);
    }
}

/// Fresh scratch directory under the system temp dir; removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(prefix: &str) -> Self {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("pfsim-parallel-{prefix}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }

    fn journal_bytes(&self) -> Vec<u8> {
        std::fs::read(self.0.join("journal.jsonl")).expect("journal written")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn checkpointed(dir: &PathBuf, max_attempts: u32) -> HarnessOpts {
    HarnessOpts { max_attempts, ..HarnessOpts::checkpointed(dir) }
}

/// Statuses must agree across schedules, including failure payloads.
fn assert_same_status(a: &CellStatus, b: &CellStatus, cell: usize) {
    match (a, b) {
        (CellStatus::Ok(x), CellStatus::Ok(y)) => {
            assert_eq!(x.metrics, y.metrics, "cell {cell}: metrics must be bit-identical");
        }
        (CellStatus::Failed { error: x }, CellStatus::Failed { error: y }) => {
            assert_eq!(x.to_string(), y.to_string(), "cell {cell}: failure must match");
        }
        (CellStatus::TimedOut { limit_ms: x }, CellStatus::TimedOut { limit_ms: y }) => {
            assert_eq!(x, y, "cell {cell}: deadline must match");
        }
        (x, y) => panic!("cell {cell}: status diverged across thread counts: {x:?} vs {y:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The headline contract: the same checkpointed grid — healthy cells
    /// plus one that panics — run sequentially and on N threads produces
    /// identical per-cell results, identical journal bytes, identical
    /// cell fingerprints, and identical summary counters.
    #[test]
    fn n_thread_sweep_is_bit_identical_to_sequential(
        seed in 0u64..500,
        refs in 600usize..1500,
        threads in 2usize..6,
    ) {
        let traces = vec![
            TraceKind::Cad.generate(refs, seed),
            TraceKind::Snake.generate(refs, seed.wrapping_add(1)),
        ];
        let mut cells = Vec::new();
        for ti in 0..traces.len() {
            for &cache in &[64usize, 256] {
                for p in [PolicySpec::NoPrefetch, PolicySpec::Tree] {
                    cells.push((ti, SimConfig::new(cache, p)));
                }
            }
        }
        // A poisoned cell among healthy siblings: isolation must not
        // depend on the schedule.
        cells.insert(3, (0, SimConfig::new(64, PolicySpec::PanicProbe { after: 40 })));

        let knob = Threads::pinned(1);
        let seq_dir = Scratch::new("seq");
        let seq_opts = checkpointed(&seq_dir.0, 1);
        let seq = run_cells_checkpointed(&traces, &cells, &seq_opts).unwrap();

        knob.repin(threads);
        let par_dir = Scratch::new("par");
        let par_opts = checkpointed(&par_dir.0, 1);
        let par = run_cells_checkpointed(&traces, &cells, &par_opts).unwrap();

        prop_assert_eq!(seq.cells.len(), par.cells.len());
        for (i, (a, b)) in seq.cells.iter().zip(&par.cells).enumerate() {
            prop_assert_eq!(a.trace_index, b.trace_index);
            prop_assert_eq!(&a.config, &b.config);
            assert_same_status(&a.status, &b.status, i);
            prop_assert_eq!(
                cell_fingerprint(&traces[a.trace_index], &a.config),
                cell_fingerprint(&traces[b.trace_index], &b.config)
            );
        }
        // The journal sorts its lines by cell fingerprint at flush, so
        // the file bytes are schedule-independent.
        prop_assert_eq!(seq_dir.journal_bytes(), par_dir.journal_bytes());
        prop_assert_eq!(seq_opts.log.summary(), par_opts.log.summary());
        prop_assert_eq!(seq_opts.log.refs_simulated(), par_opts.log.refs_simulated());
    }
}

/// A cell that trips the cooperative deadline guard must be reported
/// `TimedOut` on every schedule while its short siblings complete with
/// bit-identical metrics. With a zero deadline the guard fires at its
/// first clock check (every 4096 events), so a short trace (< 4096
/// events) always completes and a long one always times out.
#[test]
fn deadline_guard_cell_times_out_identically_across_thread_counts() {
    let traces = vec![TraceKind::Cad.generate(200, 11), TraceKind::Cad.generate(20_000, 11)];
    let cells = vec![
        (0, SimConfig::new(64, PolicySpec::Tree)),
        (1, SimConfig::new(64, PolicySpec::Tree)),
        (0, SimConfig::new(256, PolicySpec::NoPrefetch)),
    ];

    let knob = Threads::pinned(1);
    let run_with = |dir: &Scratch| {
        let opts = HarnessOpts { deadline_ms: Some(0), ..checkpointed(&dir.0, 1) };
        let run = run_cells_checkpointed(&traces, &cells, &opts).unwrap();
        (run, opts.log.summary())
    };

    let seq_dir = Scratch::new("deadline-seq");
    let (seq, seq_summary) = run_with(&seq_dir);
    knob.repin(4);
    let par_dir = Scratch::new("deadline-par");
    let (par, par_summary) = run_with(&par_dir);

    assert!(matches!(seq.cells[1].status, CellStatus::TimedOut { limit_ms: 0 }));
    assert!(seq.cells[0].result().is_some() && seq.cells[2].result().is_some());
    for (i, (a, b)) in seq.cells.iter().zip(&par.cells).enumerate() {
        assert_same_status(&a.status, &b.status, i);
    }
    assert_eq!(seq_summary, par_summary);
    assert_eq!(seq_summary.timed_out, 1);
    assert_eq!(seq_dir.journal_bytes(), par_dir.journal_bytes());
}

/// Without the harness, a panic inside `run_cells` unwinds out of the
/// pool. The pool re-throws the payload of the *smallest* panicking
/// index — the cell the sequential loop would have hit first — so the
/// observable panic is identical on every thread count.
#[test]
fn bare_run_cells_propagates_the_first_panic_on_every_thread_count() {
    let traces = vec![TraceKind::Snake.generate(800, 5)];
    let cells = vec![
        (0, SimConfig::new(64, PolicySpec::Tree)),
        (0, SimConfig::new(64, PolicySpec::PanicProbe { after: 10 })),
        (0, SimConfig::new(128, PolicySpec::PanicProbe { after: 20 })),
        (0, SimConfig::new(256, PolicySpec::Tree)),
    ];

    let payload_at = |knob: &Threads, n: usize| -> String {
        knob.repin(n);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = run_cells(&traces, &cells);
        }))
        .expect_err("probe cell must panic");
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload should be a string")
    };

    let knob = Threads::pinned(1);
    let sequential = payload_at(&knob, 1);
    for n in [2, 4, 8] {
        assert_eq!(payload_at(&knob, n), sequential, "panic payload diverged at {n} threads");
    }
}

/// Experiment-level check: a full report (the figure pipeline that
/// `figures` renders to CSV) has byte-identical CSV on 1 and 4 threads.
#[test]
fn experiment_csv_bytes_match_across_thread_counts() {
    let opts = ExperimentOpts {
        refs: 2_000,
        seed: 42,
        cache_sizes: vec![64, 256],
        ..ExperimentOpts::default()
    };
    let traces = TraceSet::generate(&opts);

    let knob = Threads::pinned(1);
    let csv_at = |n: usize| -> Vec<String> {
        knob.repin(n);
        run_experiment("fig6", &traces, &opts).iter().map(|r| r.to_csv()).collect()
    };

    let sequential = csv_at(1);
    assert!(!sequential.is_empty());
    assert_eq!(csv_at(4), sequential, "fig6 CSV must be byte-identical on 4 threads");
}
