//! Integration tests asserting the paper's *qualitative* findings hold on
//! the synthetic workloads at moderate scale. These are the headline
//! claims of Section 9; EXPERIMENTS.md records the quantitative detail.

use predictive_prefetch::prelude::*;

const REFS: usize = 60_000;
const SEED: u64 = 2024;

fn miss(trace: &Trace, cache: usize, spec: PolicySpec) -> f64 {
    run_simulation(trace, &SimConfig::new(cache, spec)).metrics.miss_rate()
}

#[test]
fn cad_next_limit_is_useless_but_tree_helps() {
    // Paper Figure 6 (CAD): "the next-limit scheme performs no better than
    // the no-prefetch scheme ... our tree-based prefetching scheme proves
    // very successful in predicting non-sequential accesses".
    let trace = TraceKind::Cad.generate(REFS, SEED);
    let base = miss(&trace, 1024, PolicySpec::NoPrefetch);
    let nl = miss(&trace, 1024, PolicySpec::NextLimit);
    let tree = miss(&trace, 1024, PolicySpec::Tree);
    assert!(
        (nl - base).abs() < 0.03,
        "next-limit should match no-prefetch on CAD: {nl:.3} vs {base:.3}"
    );
    assert!(
        tree < base - 0.02,
        "tree should clearly beat no-prefetch on CAD: {tree:.3} vs {base:.3}"
    );
}

#[test]
fn sitar_next_limit_dominates_and_tree_alone_adds_little() {
    // Paper Figure 6 (sitar): next-limit cuts misses dramatically; the
    // basic tree algorithm performs about like no-prefetch.
    let trace = TraceKind::Sitar.generate(REFS, SEED);
    let base = miss(&trace, 4096, PolicySpec::NoPrefetch);
    let nl = miss(&trace, 4096, PolicySpec::NextLimit);
    let tree = miss(&trace, 4096, PolicySpec::Tree);
    assert!(nl < 0.65 * base, "next-limit should cut sitar misses sharply: {nl:.3} vs {base:.3}");
    assert!(
        tree > base - 0.35 * base,
        "tree alone should not rival next-limit on sitar: tree {tree:.3}, base {base:.3}"
    );
    assert!(nl < tree, "next-limit must beat plain tree on sitar");
}

#[test]
fn tree_next_limit_is_best_or_tied_everywhere() {
    // Paper: "With one exception, tree-next-limit has the lowest miss rate
    // for all traces and cache sizes." We allow a small tolerance.
    for kind in TraceKind::ALL {
        let trace = kind.generate(REFS, SEED);
        for cache in [256usize, 4096] {
            let tnl = miss(&trace, cache, PolicySpec::TreeNextLimit);
            for other in [PolicySpec::NoPrefetch, PolicySpec::NextLimit, PolicySpec::Tree] {
                let m = miss(&trace, cache, other);
                assert!(
                    tnl <= m + 0.03,
                    "{kind}/{cache}: tree-next-limit {tnl:.3} worse than {} {m:.3}",
                    other.name()
                );
            }
        }
    }
}

#[test]
fn reductions_are_roughly_additive_on_cello_and_snake() {
    // Paper Section 9.1: the reduction of tree-next-limit vs no-prefetch is
    // approximately the sum of the individual reductions.
    for kind in [TraceKind::Cello, TraceKind::Snake] {
        let trace = kind.generate(REFS, SEED);
        let base = miss(&trace, 1024, PolicySpec::NoPrefetch);
        let nl = base - miss(&trace, 1024, PolicySpec::NextLimit);
        let tree = base - miss(&trace, 1024, PolicySpec::Tree);
        let tnl = base - miss(&trace, 1024, PolicySpec::TreeNextLimit);
        let sum = nl + tree;
        assert!(
            (tnl - sum).abs() < 0.45 * sum.max(0.05),
            "{kind}: combined reduction {tnl:.3} far from additive {sum:.3}"
        );
    }
}

#[test]
fn perfect_selector_shows_selection_headroom() {
    // Paper Figure 15: perfect-selector reduces miss rates considerably
    // below tree on every trace.
    for kind in TraceKind::ALL {
        let trace = kind.generate(REFS, SEED);
        let tree = miss(&trace, 1024, PolicySpec::Tree);
        let oracle = miss(&trace, 1024, PolicySpec::PerfectSelector);
        assert!(
            oracle <= tree + 0.01,
            "{kind}: oracle {oracle:.3} should not lose to tree {tree:.3}"
        );
    }
}

#[test]
fn tree_lvc_matches_tree() {
    // Paper Section 9.6: "no noticeable difference in the miss rates of
    // tree-lvc and tree" — because the last-visited children are almost
    // always already cached.
    for kind in [TraceKind::Cad, TraceKind::Sitar] {
        let trace = kind.generate(REFS, SEED);
        let tree = miss(&trace, 1024, PolicySpec::Tree);
        let lvc = miss(&trace, 1024, PolicySpec::TreeLvc);
        assert!((tree - lvc).abs() < 0.05, "{kind}: tree-lvc {lvc:.3} differs from tree {tree:.3}");
    }
}

#[test]
fn cost_benefit_matches_best_parametric_baseline() {
    // Paper Section 9.7 / Figure 17: tree ≈ the best hand-tuned
    // tree-threshold / tree-children, without tuning.
    for kind in [TraceKind::Cello, TraceKind::Snake] {
        let trace = kind.generate(REFS, SEED);
        let tree = miss(&trace, 1024, PolicySpec::Tree);
        let best_param = [0.2, 0.05, 0.008]
            .iter()
            .map(|&t| miss(&trace, 1024, PolicySpec::TreeThreshold(t)))
            .chain([1usize, 3, 10].iter().map(|&k| miss(&trace, 1024, PolicySpec::TreeChildren(k))))
            .fold(f64::INFINITY, f64::min);
        assert!(
            tree <= best_param + 0.06,
            "{kind}: tree {tree:.3} far behind best parametric {best_param:.3}"
        );
    }
}

#[test]
fn prediction_accuracy_ordering_matches_table2() {
    // Table 2: sitar and CAD and snake clearly above cello.
    let mut acc = std::collections::HashMap::new();
    for kind in TraceKind::ALL {
        let trace = kind.generate(REFS, SEED);
        let stats = predictive_prefetch::tree::stats::analyze_blocks(trace.blocks(), usize::MAX);
        acc.insert(kind.name(), stats.prediction_accuracy());
    }
    assert!(acc["cad"] > acc["cello"] + 0.1, "{acc:?}");
    assert!(acc["sitar"] > acc["cello"] + 0.1, "{acc:?}");
    assert!(acc["snake"] > acc["cello"], "{acc:?}");
}

#[test]
fn lvc_ordering_matches_table3() {
    // Table 3: CAD and sitar around 70%, cello lowest.
    let mut lvc = std::collections::HashMap::new();
    for kind in TraceKind::ALL {
        let trace = kind.generate(REFS, SEED);
        let stats = predictive_prefetch::tree::stats::analyze_blocks(trace.blocks(), usize::MAX);
        lvc.insert(kind.name(), stats.lvc_repeat_rate());
    }
    assert!(lvc["cad"] > lvc["cello"], "{lvc:?}");
    assert!(lvc["sitar"] > lvc["cello"], "{lvc:?}");
    assert!(lvc["sitar"] > lvc["snake"], "{lvc:?}");
}
