//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config and
//! metrics types for downstream consumers, but nothing in the repo itself
//! serializes through serde at runtime (reports are rendered by hand in
//! `prefetch-sim::report`). With crates.io unreachable, these derives
//! expand to nothing: the attribute is accepted and type-checked away.
//! Restoring real serde only requires swapping the workspace dependency
//! back to the registry.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
