//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`BytesMut`] (a thin wrapper over `Vec<u8>`) and the subset of
//! the [`Buf`]/[`BufMut`] traits the trace codecs use: little-endian
//! fixed-width reads/writes, byte puts, slice copies, and cursor advance.

use core::ops::{Deref, DerefMut};

/// A growable byte buffer (thin `Vec<u8>` wrapper).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { inner: Vec::with_capacity(cap) }
    }

    /// Bytes currently stored.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Remove all bytes, keeping the allocation.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

/// Write access to a byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read access to a byte source with an implicit cursor.
///
/// # Panics
/// Like upstream `bytes`, the fixed-width getters panic when fewer than the
/// required bytes remain; callers must check [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copy exactly `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "copy_to_slice past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut b = BytesMut::with_capacity(32);
        b.put_slice(b"PFTR");
        b.put_u8(7);
        b.put_u16_le(0x0102);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(u64::MAX - 1);
        assert_eq!(b.len(), 4 + 1 + 2 + 4 + 8);

        let mut s: &[u8] = &b;
        let mut magic = [0u8; 4];
        s.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"PFTR");
        assert_eq!(s.get_u8(), 7);
        assert_eq!(s.get_u16_le(), 0x0102);
        assert_eq!(s.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(s.get_u64_le(), u64::MAX - 1);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn advance_skips() {
        let data = [1u8, 2, 3, 4];
        let mut s: &[u8] = &data;
        s.advance(2);
        assert_eq!(s.get_u8(), 3);
        assert_eq!(s.remaining(), 1);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn overread_panics() {
        let mut s: &[u8] = &[1u8];
        let _ = s.get_u32_le();
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u64_le(1);
        b.clear();
        assert!(b.is_empty());
    }
}
