//! Offline stand-in for `serde_json`.
//!
//! The workspace declares `serde_json` in a few manifests but no source
//! file uses it (trace metadata has its own minimal JSON codec in
//! `prefetch-trace::io::text`). This empty crate satisfies dependency
//! resolution without network access.
