//! Offline stand-in for `serde`.
//!
//! Supplies the `Serialize`/`Deserialize` trait names and re-exports the
//! no-op derives from the vendored `serde_derive`. See that crate's docs
//! for the rationale; nothing in this workspace serializes through serde
//! at runtime.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait SerializeTrait {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait DeserializeTrait<'de> {}
