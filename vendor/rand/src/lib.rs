//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the small, clean-room subset of `rand`'s 0.8 API the
//! workspace actually uses: [`rngs::SmallRng`] (xoshiro256++ seeded via
//! SplitMix64), [`SeedableRng`], and [`Rng`] with `gen`, `gen_bool`, and
//! `gen_range` over integer/float ranges.
//!
//! Streams are deterministic and stable across platforms, which is all the
//! simulator requires — they do **not** reproduce upstream `rand`'s exact
//! bit streams.

pub mod rngs;

/// A source of random 64-bit words. Object-unsafe subset of `rand::RngCore`.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanded with SplitMix64 (the conventional
    /// seeding scheme for xoshiro generators).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state);
            for (b, s) in chunk.iter_mut().zip(word.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 step: advances `state` and returns the next output word.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range`. The element type is inferred from
    /// the call site, as in upstream `rand`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`], producing elements of `T`.
pub trait SampleRange<T> {
    /// Sample uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty as $wide:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let offset = if width == 0 { rng.next_u64() } else { rng.next_u64() % width };
                (self.start as $wide).wrapping_add(offset as $wide) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                let offset = if width == u64::MAX {
                    rng.next_u64()
                } else {
                    rng.next_u64() % (width + 1)
                };
                (lo as $wide).wrapping_add(offset as $wide) as $t
            }
        }
    )+};
}

impl_int_range!(
    u8 as u64,
    u16 as u64,
    u32 as u64,
    u64 as u64,
    usize as u64,
    i8 as i64,
    i16 as i64,
    i32 as i64,
    i64 as i64,
    isize as i64,
);

macro_rules! impl_float_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = Standard::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )+};
}

impl_float_range!(f32, f64);

/// Slice helpers (`rand::seq::SliceRandom` subset).
pub mod seq {
    use crate::{Rng, RngCore};

    /// Shuffling and element choice on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-3..=3i64);
            assert!((-3..=3).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(0usize..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            lo |= f < 0.1;
            hi |= f > 0.9;
        }
        assert!(lo && hi, "samples did not cover [0,1)");
    }

    #[test]
    fn int_range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        use seq::SliceRandom;
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "32 elements left in order after shuffle");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = rng.gen_range(5u32..5);
    }
}
