//! Named RNGs. Only [`SmallRng`] is provided: a xoshiro256++ generator,
//! matching upstream `rand`'s choice of algorithm family for `SmallRng` on
//! 64-bit platforms (the exact stream differs; see the crate docs).

use crate::{RngCore, SeedableRng};

/// A small, fast, deterministic, non-cryptographic RNG (xoshiro256++).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // An all-zero state is the one fixed point of xoshiro; nudge it.
        if s == [0, 0, 0, 0] {
            let mut sm = 0xDEAD_BEEF_u64;
            for w in &mut s {
                *w = crate::splitmix64(&mut sm);
            }
        }
        SmallRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = SmallRng::from_seed([0u8; 32]);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert!(a != 0 || b != 0);
        assert_ne!(a, b);
    }

    #[test]
    fn from_seed_uses_all_words() {
        let mut seed = [0u8; 32];
        seed[0] = 1;
        let mut x = SmallRng::from_seed(seed);
        seed[31] = 1;
        let mut y = SmallRng::from_seed(seed);
        assert_ne!(x.next_u64(), y.next_u64());
    }
}
