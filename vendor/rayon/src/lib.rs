//! Offline stand-in for `rayon`, now backed by a real thread pool.
//!
//! The build environment has no crates.io access, so this vendored crate
//! supplies the `par_iter()` / `into_par_iter()` entry points the workspace
//! uses. Since PR 5 they execute on `prefetch-pool`'s work-stealing scoped
//! threads instead of sequentially: results are collected **in index
//! order** and panics propagate with the payload of the smallest panicking
//! index, so output (and failure behaviour) is bit-identical to a
//! sequential left-to-right loop. The pool size comes from
//! `prefetch_pool::set_threads` (0 = available parallelism; 1 = exact
//! sequential path on the calling thread).
//!
//! Only the surface the workspace uses is implemented: `par_iter()` /
//! `into_par_iter()` followed by one `.map(..).collect()`. Swap the real
//! rayon back in by restoring the crates.io entry in the workspace
//! `Cargo.toml` when network access is available.

pub mod prelude {
    /// Parallel iterator over owned items, buffered from any `IntoIterator`.
    pub struct IntoParIter<T> {
        items: Vec<T>,
    }

    impl<T> IntoParIter<T> {
        /// Map each owned item through `f` on the pool.
        pub fn map<U, F>(self, f: F) -> MapOwned<T, F>
        where
            F: Fn(T) -> U,
        {
            MapOwned { items: self.items, f }
        }
    }

    /// Pending owned-item map; work happens at `collect`.
    pub struct MapOwned<T, F> {
        items: Vec<T>,
        f: F,
    }

    impl<T, F> MapOwned<T, F> {
        /// Run the map on the pool and gather results in index order.
        pub fn collect<C, U>(self) -> C
        where
            T: Send,
            U: Send,
            F: Fn(T) -> U + Sync,
            C: FromIterator<U>,
        {
            prefetch_pool::map_vec(self.items, self.f).into_iter().collect()
        }
    }

    /// `into_par_iter()` for owned collections.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Returns a parallel iterator over the collection's items.
        fn into_par_iter(self) -> IntoParIter<Self::Item> {
            IntoParIter { items: self.into_iter().collect() }
        }
    }

    impl<T: IntoIterator> IntoParallelIterator for T {}

    /// Parallel iterator over borrowed slice items.
    pub struct ParIterRef<'data, T> {
        items: &'data [T],
    }

    impl<'data, T> ParIterRef<'data, T> {
        /// Map each borrowed item through `f` on the pool.
        pub fn map<U, F>(self, f: F) -> MapRef<'data, T, F>
        where
            F: Fn(&'data T) -> U,
        {
            MapRef { items: self.items, f }
        }
    }

    /// Pending borrowed-item map; work happens at `collect`.
    pub struct MapRef<'data, T, F> {
        items: &'data [T],
        f: F,
    }

    impl<'data, T, F> MapRef<'data, T, F> {
        /// Run the map on the pool and gather results in index order.
        pub fn collect<C, U>(self) -> C
        where
            T: Sync,
            U: Send,
            F: Fn(&'data T) -> U + Sync,
            C: FromIterator<U>,
        {
            let f = &self.f;
            let items = self.items;
            prefetch_pool::run_indexed(items.len(), |i| f(&items[i])).into_iter().collect()
        }
    }

    /// `par_iter()` for borrowed slices.
    pub trait IntoParallelRefIterator<'data> {
        /// The borrowed item type.
        type Item: 'data;

        /// Returns a parallel iterator over borrowed items.
        fn par_iter(&'data self) -> ParIterRef<'data, Self::Item>;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = T;

        fn par_iter(&'data self) -> ParIterRef<'data, T> {
            ParIterRef { items: self }
        }
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;

        fn par_iter(&'data self) -> ParIterRef<'data, T> {
            ParIterRef { items: self.as_slice() }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::Mutex;

    /// Serialise tests that touch the global pool knob.
    static KNOB: Mutex<()> = Mutex::new(());

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let a: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        let b: Vec<i32> = v.iter().map(|x| x * 2).collect();
        assert_eq!(a, b);
        let c: Vec<i32> = v.into_par_iter().map(|x| x + 1).collect();
        assert_eq!(c, vec![2, 3, 4, 5]);
    }

    #[test]
    fn multi_threaded_map_is_index_ordered() {
        let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
        let v: Vec<u64> = (0..300).collect();
        let want: Vec<u64> = v.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 4] {
            prefetch_pool::set_threads(threads);
            let got: Vec<u64> = v.par_iter().map(|x| x * 3 + 1).collect();
            assert_eq!(got, want, "threads={threads}");
            let owned: Vec<String> = v.clone().into_par_iter().map(|x| format!("{x}")).collect();
            assert_eq!(owned.len(), v.len());
            assert_eq!(owned[299], "299");
        }
        prefetch_pool::set_threads(0);
    }

    #[test]
    fn panic_payload_matches_sequential_first_panic() {
        let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
        prefetch_pool::set_threads(4);
        let v: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            let _: Vec<usize> =
                v.par_iter().map(|&i| if i % 20 == 13 { panic!("item {i}") } else { i }).collect();
        });
        prefetch_pool::set_threads(0);
        let payload = result.expect_err("must panic");
        let msg = payload.downcast_ref::<String>().expect("String payload");
        assert_eq!(msg, "item 13");
    }
}
