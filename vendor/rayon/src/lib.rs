//! Offline stand-in for `rayon`.
//!
//! The build environment has no crates.io access, so this vendored crate
//! supplies the `par_iter()` / `into_par_iter()` entry points the workspace
//! uses and executes them **sequentially** on the calling thread. All sweep
//! results are documented to be schedule-independent, so sequential
//! execution is behaviorally identical (just slower on multi-core hosts).
//! Swap the real rayon back in by restoring the crates.io entry in the
//! workspace `Cargo.toml` when network access is available.

pub mod prelude {
    /// `into_par_iter()` for owned collections — sequential here.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Returns a plain sequential iterator.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<T: IntoIterator> IntoParallelIterator for T {}

    /// `par_iter()` for borrowed slices — sequential here.
    pub trait IntoParallelRefIterator<'data> {
        /// Iterator over borrowed items.
        type Iter: Iterator;

        /// Returns a plain sequential iterator.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = core::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = core::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.as_slice().iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let a: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        let b: Vec<i32> = v.iter().map(|x| x * 2).collect();
        assert_eq!(a, b);
        let c: Vec<i32> = v.into_par_iter().map(|x| x + 1).collect();
        assert_eq!(c, vec![2, 3, 4, 5]);
    }
}
