//! Offline stand-in for `criterion`.
//!
//! Provides the harness surface this workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Throughput`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Each benchmark body runs a small fixed number of iterations
//! and the mean wall-clock time is printed; there is no warm-up, outlier
//! rejection, or statistical analysis. Good enough to keep benches
//! compiling and smoke-runnable without network access.

use std::fmt;
use std::time::Instant;

/// Prevent the optimizer from deleting a value or the work producing it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation; recorded but only echoed in output.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new<S: fmt::Display, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u32,
    total_ns: u128,
}

impl Bencher {
    /// Run `routine` `iters` times, timing each call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            self.total_ns += start.elapsed().as_nanos();
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u32,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Record a throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Set the iteration count used for each benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u32).max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        // Keep the harness fast offline: a handful of timed iterations.
        let iters = self.sample_size.min(10);
        let mut b = Bencher { iters, total_ns: 0 };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into();
        let iters = self.sample_size.min(10);
        let mut b = Bencher { iters, total_ns: 0 };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Finish the group (upstream writes reports here; we do nothing).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let mean_ns = if b.iters == 0 { 0 } else { b.total_ns / b.iters as u128 };
        let tp = match self.throughput {
            Some(Throughput::Elements(n)) => format!(" ({n} elems/iter)"),
            Some(Throughput::Bytes(n)) => format!(" ({n} B/iter)"),
            None => String::new(),
        };
        println!(
            "bench {}/{}: {:.3} ms/iter over {} iters{}",
            self.name,
            id,
            mean_ns as f64 / 1.0e6,
            b.iters,
            tp
        );
    }
}

/// Benchmark manager; one per `criterion_group!` function.
pub struct Criterion {
    default_sample_size: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    /// Begin a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup { name: name.into(), sample_size, throughput: None, _criterion: self }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("criterion").bench_function(id, f);
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.throughput(Throughput::Elements(4));
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0u64..4).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("scale", 7), &7u64, |b, &n| b.iter(|| n * 2));
        g.bench_with_input(BenchmarkId::from_parameter(9), &9u64, |b, &n| b.iter(|| n + 1));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
