//! Offline stand-in for `proptest`.
//!
//! Implements the surface this workspace's property tests use — the
//! [`proptest!`] macro, [`prop_assert!`]/[`prop_assert_eq!`], range and
//! tuple strategies, [`collection::vec`], [`any`], and
//! [`ProptestConfig::with_cases`] — over a deterministic per-test RNG
//! (seeded from the test's name, so failures reproduce exactly).
//!
//! Differences from upstream: no shrinking (a failing case reports the
//! case number and message only) and no persistence of failure seeds
//! (`*.proptest-regressions` files are ignored).

use core::ops::{Range, RangeInclusive};

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Failure raised by a `prop_assert!`; carries the formatted message.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic RNG driving strategy sampling (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test identifier (FNV-1a of the name).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let width = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(width) as i128) as $t
            }
        }
    )+};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Sample an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+ $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

/// Strategy wrapper produced by [`any`].
pub struct Any<T> {
    _marker: core::marker::PhantomData<fn() -> T>,
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: core::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A vector of `elem`-generated values with length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Assert inside a proptest body; failures abort the current case with a
/// message instead of unwinding through foreign frames.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !($cond) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !($cond) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} at {}:{}",
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

/// Equality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}) at {}:{}",
                stringify!($a),
                stringify!($b),
                left,
                right,
                file!(),
                line!()
            )));
        }
    }};
}

/// Inequality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} != {} (both: {:?}) at {}:{}",
                stringify!($a),
                stringify!($b),
                left,
                file!(),
                line!()
            )));
        }
    }};
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( cfg = $cfg:expr; ) => {};
    ( cfg = $cfg:expr;
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let outcome = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!("proptest {} failed at case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, e);
                }
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in -4i64..=4, f in 0.5f64..2.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!((0.5..2.5).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(0u64..5, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            for e in &v {
                prop_assert!(*e < 5);
            }
        }

        #[test]
        fn tuples_compose(t in (any::<bool>(), 0u32..7, 0.0f64..1.0)) {
            prop_assert!(t.1 < 7);
            prop_assert!(t.2 < 1.0);
            prop_assert_eq!(t.0, t.0);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0u64..2) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
